/**
 * @file
 * Whole-network property tests: credit conservation under varied load,
 * policies, routing and topologies, checked mid-flight and after
 * drain.  These are the strongest structural guarantees in the
 * simulator — any accounting bug in the credit loop, inboxes, or
 * buffers trips them.
 */

#include <gtest/gtest.h>

#include "network/network.hpp"
#include "traffic/pattern_traffic.hpp"
#include "traffic/task_model.hpp"

using dvsnet::Cycle;
using dvsnet::network::Network;
using dvsnet::network::NetworkConfig;
using dvsnet::network::PolicyKind;
using dvsnet::network::RoutingKind;
using dvsnet::traffic::Pattern;
using dvsnet::traffic::PatternTraffic;

namespace
{

struct InvariantCase
{
    int radix;
    bool torus;
    PolicyKind policy;
    RoutingKind routing;
    double rate;
};

class FlowControlInvariant
    : public ::testing::TestWithParam<InvariantCase>
{};

} // namespace

TEST_P(FlowControlInvariant, CreditConservationHolds)
{
    const auto &param = GetParam();
    NetworkConfig cfg;
    cfg.radix = param.radix;
    cfg.torus = param.torus;
    cfg.policy = param.policy;
    cfg.routing = param.routing;

    Network net(cfg);
    PatternTraffic traffic(net.topology(), Pattern::UniformRandom,
                           param.rate, 31);
    net.attachTraffic(traffic);

    // Check repeatedly mid-flight (the interesting case: flits and
    // credits in the air, links mid-transition).
    for (Cycle c = 5000; c <= 40000; c += 5000) {
        net.runUntilCycle(c);
        net.verifyFlowControlInvariants();
    }
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, FlowControlInvariant,
    ::testing::Values(
        InvariantCase{4, false, PolicyKind::None, RoutingKind::Dor, 0.02},
        InvariantCase{4, false, PolicyKind::History, RoutingKind::Dor,
                      0.02},
        InvariantCase{4, false, PolicyKind::History, RoutingKind::Dor,
                      0.15},  // congested, links transitioning
        InvariantCase{4, false, PolicyKind::History,
                      RoutingKind::MinimalAdaptive, 0.05},
        InvariantCase{4, true, PolicyKind::History, RoutingKind::Dor,
                      0.05},
        InvariantCase{8, false, PolicyKind::History, RoutingKind::Dor,
                      0.03},
        InvariantCase{2, false, PolicyKind::History, RoutingKind::Dor,
                      0.05}));

TEST(FlowControlDrain, AllCreditsReturnAfterQuiesce)
{
    NetworkConfig cfg;
    cfg.radix = 4;
    cfg.policy = PolicyKind::History;
    Network net(cfg);

    // A finite burst of hand-injected packets, then quiesce.
    dvsnet::Rng rng(9);
    for (int i = 0; i < 200; ++i) {
        const auto src = static_cast<dvsnet::NodeId>(rng.uniformInt(
            std::uint64_t{16}));
        auto dst = static_cast<dvsnet::NodeId>(rng.uniformInt(
            std::uint64_t{15}));
        if (dst >= src)
            ++dst;
        net.injectPacket(src, dst);
    }
    net.runUntilCycle(20000);

    // Everything delivered, every credit home.
    EXPECT_EQ(net.metrics().inFlight(), 0u);
    EXPECT_EQ(net.metrics().latency().count() +
                  net.metrics().packetsEjected(),
              net.metrics().packetsEjected() * 2);  // all counted once
    net.verifyFlowControlInvariants();
    const auto perVc = net.config().router.bufferPerPort /
                       static_cast<std::size_t>(net.config().router.numVcs);
    for (const auto &ch : net.topology().channels()) {
        auto &up = net.router(ch.src);
        for (dvsnet::VcId v = 0; v < net.config().router.numVcs; ++v)
            EXPECT_EQ(up.creditCount(ch.srcPort, v), perVc);
    }
}
