/**
 * @file
 * Two-level workload tests: Little's-law task concurrency, sphere-of-
 * locality destination bias, per-task rate calibration, reproducibility.
 */

#include <gtest/gtest.h>

#include <map>

#include "common/rng.hpp"
#include "sim/kernel.hpp"
#include "topo/topology.hpp"
#include "traffic/task_model.hpp"

using dvsnet::Cycle;
using dvsnet::NodeId;
using dvsnet::Rng;
using dvsnet::cyclesToTicks;
using dvsnet::sim::Kernel;
using dvsnet::topo::KAryNCube;
using dvsnet::traffic::TwoLevelParams;
using dvsnet::traffic::TwoLevelWorkload;

namespace
{

TwoLevelParams
fastParams()
{
    TwoLevelParams p;
    p.avgConcurrentTasks = 20;
    p.meanTaskDurationCycles = 20000;
    p.networkInjectionRate = 0.2;
    p.sourcesPerTask = 16;  // keep the test cheap
    p.seed = 11;
    return p;
}

} // namespace

TEST(TwoLevel, InitialPopulationMatchesConcurrency)
{
    const KAryNCube m(8, 2, false);
    Kernel kernel;
    TwoLevelWorkload wl(m, fastParams());
    wl.start(kernel, [](const dvsnet::traffic::PacketRequest &) {});
    EXPECT_EQ(wl.activeTasks(), 20);
}

TEST(TwoLevel, ConcurrencyHoversAroundTarget)
{
    const KAryNCube m(8, 2, false);
    Kernel kernel;
    TwoLevelWorkload wl(m, fastParams());
    wl.start(kernel, [](const dvsnet::traffic::PacketRequest &) {});

    double sum = 0.0;
    const int samples = 50;
    for (int i = 1; i <= samples; ++i) {
        kernel.run(cyclesToTicks(static_cast<Cycle>(i) * 10000));
        sum += static_cast<double>(wl.activeTasks());
    }
    EXPECT_NEAR(sum / samples, 20.0, 5.0);
}

TEST(TwoLevel, TasksSpawnAndComplete)
{
    const KAryNCube m(8, 2, false);
    Kernel kernel;
    TwoLevelWorkload wl(m, fastParams());
    wl.start(kernel, [](const dvsnet::traffic::PacketRequest &) {});
    kernel.run(cyclesToTicks(200000));
    EXPECT_GT(wl.stats().tasksSpawned, 100u);
    EXPECT_GT(wl.stats().tasksCompleted, 100u);
    EXPECT_EQ(static_cast<std::int64_t>(wl.stats().tasksSpawned) -
                  static_cast<std::int64_t>(wl.stats().tasksCompleted),
              wl.activeTasks());
}

TEST(TwoLevel, InjectionRateNearTarget)
{
    const KAryNCube m(8, 2, false);
    Kernel kernel;
    auto p = fastParams();
    p.networkInjectionRate = 0.5;
    TwoLevelWorkload wl(m, p);
    std::uint64_t packets = 0;
    wl.start(kernel,
             [&](const dvsnet::traffic::PacketRequest &) { ++packets; });
    const Cycle horizon = 400000;
    kernel.run(cyclesToTicks(horizon));
    const double expected = 0.5 * static_cast<double>(horizon);
    EXPECT_NEAR(static_cast<double>(packets), expected, expected * 0.25);
}

TEST(TwoLevel, PacketsNeverSelfAddressed)
{
    const KAryNCube m(4, 2, false);
    Kernel kernel;
    TwoLevelWorkload wl(m, fastParams());
    wl.start(kernel, [](const dvsnet::traffic::PacketRequest &r) {
        EXPECT_NE(r.src, r.dst);
    });
    kernel.run(cyclesToTicks(100000));
}

TEST(TwoLevel, LocalityBiasesDestinations)
{
    const KAryNCube m(8, 2, false);
    auto p = fastParams();
    p.localityRadius = 2;
    p.pLocal = 0.75;
    Kernel kernel;
    TwoLevelWorkload wl(m, p);
    Rng rng(123);

    const NodeId center = m.nodeId({4, 4});
    int local = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        if (m.hopDistance(center, wl.localityDestination(center, rng)) <= 2)
            ++local;
    }
    // p_local + the chance a uniform draw lands inside the sphere.
    const double pSphereUniform = 12.0 / 63.0;
    const double expected = 0.75 + 0.25 * pSphereUniform;
    EXPECT_NEAR(static_cast<double>(local) / n, expected, 0.02);
}

TEST(TwoLevel, SpatialVarianceExistsAcrossSources)
{
    // Task placement concentrates traffic: per-node injection counts
    // should vary far more than a uniform split would.
    const KAryNCube m(8, 2, false);
    Kernel kernel;
    TwoLevelWorkload wl(m, fastParams());
    std::map<NodeId, double> perSrc;
    wl.start(kernel, [&](const dvsnet::traffic::PacketRequest &r) {
        perSrc[r.src] += 1.0;
    });
    kernel.run(cyclesToTicks(100000));

    double total = 0.0;
    for (auto &[n, c] : perSrc)
        total += c;
    const double mean = total / 64.0;
    double var = 0.0;
    for (NodeId n = 0; n < 64; ++n) {
        const double c = perSrc.count(n) ? perSrc[n] : 0.0;
        var += (c - mean) * (c - mean);
    }
    var /= 64.0;
    ASSERT_GT(mean, 10.0);
    // Poisson splitting would give var ~ mean; task locality produces
    // much larger spatial variance (Fig. 8).
    EXPECT_GT(var / mean, 5.0);
}

TEST(TwoLevel, DeterministicUnderSeed)
{
    const KAryNCube m(4, 2, false);
    std::vector<std::tuple<dvsnet::Tick, NodeId, NodeId>> a, b;
    for (auto *log : {&a, &b}) {
        Kernel kernel;
        TwoLevelWorkload wl(m, fastParams());
        wl.start(kernel,
                 [&kernel, log](const dvsnet::traffic::PacketRequest &r) {
                     log->push_back({kernel.now(), r.src, r.dst});
                 });
        kernel.run(cyclesToTicks(50000));
    }
    EXPECT_EQ(a, b);
}

TEST(TwoLevel, PerPacketDestinationSpreadsFlows)
{
    const KAryNCube m(8, 2, false);
    auto p = fastParams();
    p.perPacketDestination = true;
    p.avgConcurrentTasks = 2;  // few tasks -> per-task mode would give
                               // few distinct destinations
    Kernel kernel;
    TwoLevelWorkload wl(m, p);
    std::set<NodeId> dsts;
    wl.start(kernel, [&](const dvsnet::traffic::PacketRequest &r) {
        dsts.insert(r.dst);
    });
    kernel.run(cyclesToTicks(200000));
    EXPECT_GT(dsts.size(), 10u);
}

TEST(TwoLevel, ShortTasksAlsoWork)
{
    // 10 us tasks (the Fig. 16/17 regime).
    const KAryNCube m(8, 2, false);
    auto p = fastParams();
    p.meanTaskDurationCycles = 10000;
    Kernel kernel;
    TwoLevelWorkload wl(m, p);
    std::uint64_t packets = 0;
    wl.start(kernel,
             [&](const dvsnet::traffic::PacketRequest &) { ++packets; });
    kernel.run(cyclesToTicks(100000));
    EXPECT_GT(packets, 0u);
    EXPECT_GT(wl.stats().tasksCompleted, 50u);
}
