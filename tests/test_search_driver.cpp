/**
 * @file
 * SearchDriver tests: the resumable, cached successive-halving search.
 *
 * The load-bearing contracts, each pinned here:
 *  - same seed => bit-identical Pareto front and journal bytes;
 *  - a budget-stopped ("killed") run resumed from its own journal
 *    reproduces the cold run's front and journal byte-for-byte;
 *  - a warm-cache second run performs ZERO network evaluations
 *    (asserted through the CounterRegistry) yet returns the same front;
 *  - on a closed-form synthetic objective whose rung error respects the
 *    declared slack, successive halving never discards a true
 *    full-fidelity Pareto point (checked against brute force).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/fatal.hpp"
#include "common/rng.hpp"
#include "search/driver.hpp"

using dvsnet::ConfigError;
using dvsnet::CounterRegistry;
using dvsnet::Cycle;
using dvsnet::splitmix64;
using dvsnet::network::ExperimentSpec;
using dvsnet::network::PolicyKind;
using dvsnet::network::RunResults;
using dvsnet::search::applySearchSpec;
using dvsnet::search::Candidate;
using dvsnet::search::canonicalJson;
using dvsnet::search::ParetoFront;
using dvsnet::search::RungSpec;
using dvsnet::search::SearchConfig;
using dvsnet::search::SearchDriver;
using dvsnet::search::SearchOutcome;
using dvsnet::search::SearchSpec;
using dvsnet::search::validateSearchSpec;

namespace
{

std::string
tmpPath(const std::string &name)
{
    return ::testing::TempDir() + "/" + name;
}

std::string
fileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(static_cast<bool>(in)) << "cannot read " << path;
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

/** Closed-form objectives: higher TL_low trades latency for power. */
void
synthFullObjectives(const Candidate &c, double &latency, double &power)
{
    latency = 150.0 + 200.0 * c.tlLow + 40.0 * (c.tlHigh - c.tlLow) +
              0.05 * static_cast<double>(c.freqLockCycles) +
              5.0 * static_cast<double>(c.cooldown) - 2.0 * c.weight;
    power = 2.0 - 1.8 * c.tlLow + 0.04 * c.weight +
            0.3 * (c.tlHigh - c.tlLow);
}

constexpr double kSynthLatencyAmp = 5.0;
constexpr double kSynthPowerAmp = 0.05;

/**
 * Synthetic evaluator: the closed form plus a seed-deterministic
 * fidelity error that shrinks linearly to zero at the full measurement
 * window and never exceeds the amplitude — so rungs declaring the
 * amplitudes as absolute slack satisfy the promotion rule exactly.
 */
SearchDriver::Evaluator
synthEvaluator(Cycle fullMeasure)
{
    return [fullMeasure](const ExperimentSpec &spec, double,
                         std::uint64_t seed) {
        Candidate c;
        c.tlLow = spec.network.policyParams.tlLow;
        c.tlHigh = spec.network.policyParams.tlHigh;
        c.weight = spec.network.policyParams.weight;
        c.cooldown = spec.network.policyCooldown;
        c.freqLockCycles = spec.network.link.freqTransitionLinkCycles;

        double latency = 0.0, power = 0.0;
        synthFullObjectives(c, latency, power);

        const double frac =
            1.0 - static_cast<double>(spec.measure) /
                      static_cast<double>(fullMeasure);
        std::uint64_t state = seed;
        const double u1 =
            static_cast<double>(splitmix64(state) >> 11) / 9007199254740992.0;
        const double u2 =
            static_cast<double>(splitmix64(state) >> 11) / 9007199254740992.0;
        latency += kSynthLatencyAmp * frac * (2.0 * u1 - 1.0);
        power += kSynthPowerAmp * frac * (2.0 * u2 - 1.0);

        RunResults r;
        r.measuredCycles = spec.measure;
        r.avgLatencyCycles = latency;
        r.avgPowerW = power;
        r.totalEnergyJ =
            power * static_cast<double>(spec.measure) * 1e-9;
        return r;
    };
}

/** Synthetic-objective search over a sampled candidate cloud. */
SearchConfig
synthConfig(std::uint64_t seed)
{
    SearchConfig config;
    config.base.network.radix = 4;
    config.base.warmup = 1000;
    config.base.measure = 50000;
    config.seed = seed;
    config.randomCandidates = 24;

    for (Cycle measure : {Cycle{5000}, Cycle{20000}, Cycle{50000}}) {
        RungSpec rung;
        rung.warmup = 1000;
        rung.measure = measure;
        rung.slackLatency = kSynthLatencyAmp;
        rung.slackPower = kSynthPowerAmp;
        config.rungs.push_back(rung);
    }
    return config;
}

SearchOutcome
runSynth(SearchConfig config, CounterRegistry *registry = nullptr)
{
    SearchDriver driver(std::move(config), registry);
    driver.setEvaluator(synthEvaluator(driver.config().base.measure));
    return driver.run();
}

/** Real-network search small enough for the test suite. */
SearchConfig
realConfig()
{
    SearchConfig config;
    config.base.network.radix = 4;
    config.base.workload.avgConcurrentTasks = 10;
    config.base.workload.meanTaskDurationCycles = 2e4;
    config.base.workload.sourcesPerTask = 16;
    config.base.warmup = 1000;
    config.base.measure = 3000;
    config.injectionRate = 0.4;
    config.randomCandidates = 0;
    config.threads = 1;

    Candidate a;  // paper default thresholds
    Candidate b;
    b.tlLow = 0.15;
    b.tlHigh = 0.25;
    Candidate c;
    c.tlLow = 0.45;
    c.tlHigh = 0.6;
    c.cooldown = 2;
    config.seeded = {a, b, c};

    RungSpec quick;
    quick.warmup = 500;
    quick.measure = 1000;
    RungSpec full;
    full.warmup = 1000;
    full.measure = 3000;
    config.rungs = {quick, full};
    return config;
}

std::vector<std::vector<double>>
frontObjectives(const ParetoFront &front)
{
    std::vector<std::vector<double>> out;
    for (const auto &p : front.points())
        out.push_back(p.objectives);
    return out;
}

} // namespace

TEST(SearchSpec, GrammarRoundTrip)
{
    const auto spec = SearchSpec::parse(
        "successive-halving:candidates=32,rungs=4,step=3,slack=0.1");
    EXPECT_EQ(spec.name, "successive-halving");
    ASSERT_EQ(spec.params.size(), 4u);
    EXPECT_EQ(*spec.find("candidates"), "32");
    EXPECT_EQ(spec.find("missing"), nullptr);
    EXPECT_EQ(spec.toString(),
              "successive-halving:candidates=32,rungs=4,step=3,slack=0.1");

    EXPECT_THROW(SearchSpec::parse(""), ConfigError);
    EXPECT_THROW(SearchSpec::parse("successive-halving:oops"),
                 ConfigError);
    EXPECT_THROW(SearchSpec::parse("successive-halving:=3"), ConfigError);
}

TEST(SearchSpec, ValidateRejectsUnknownNamesAndKeys)
{
    EXPECT_TRUE(validateSearchSpec("successive-halving").empty());
    EXPECT_TRUE(
        validateSearchSpec("successive-halving:budget=100").empty());

    const auto unknownName = validateSearchSpec("grid");
    ASSERT_EQ(unknownName.size(), 1u);
    EXPECT_NE(unknownName[0].find("unknown search strategy 'grid'"),
              std::string::npos);
    EXPECT_NE(unknownName[0].find("successive-halving"),
              std::string::npos);

    const auto unknownKey =
        validateSearchSpec("successive-halving:bogus=1");
    ASSERT_EQ(unknownKey.size(), 1u);
    EXPECT_NE(unknownKey[0].find("unknown key 'bogus'"),
              std::string::npos);
    EXPECT_NE(unknownKey[0].find("candidates"), std::string::npos);
}

TEST(SearchSpec, ApplyBuildsGeometricLadder)
{
    SearchConfig config;
    config.base.warmup = 20000;
    config.base.measure = 150000;

    applySearchSpec(config, SearchSpec::parse(
        "successive-halving:candidates=12,rungs=3,step=5,slack=0.2,"
        "budget=40"));
    EXPECT_EQ(config.randomCandidates, 12u);
    EXPECT_EQ(config.maxNetworkEvals, 40u);
    ASSERT_EQ(config.rungs.size(), 3u);
    EXPECT_EQ(config.rungs[0].measure, Cycle{6000});   // 150000 / 25
    EXPECT_EQ(config.rungs[1].measure, Cycle{30000});  // 150000 / 5
    EXPECT_EQ(config.rungs[2].measure, Cycle{150000});
    // Warm-up is never truncated: it absorbs the DVS transient, so a
    // shorter warm-up would measure a different steady state.
    EXPECT_EQ(config.rungs[0].warmup, Cycle{20000});
    EXPECT_EQ(config.rungs[1].warmup, Cycle{20000});
    EXPECT_EQ(config.rungs[2].warmup, Cycle{20000});
    EXPECT_DOUBLE_EQ(config.rungs[1].slackFraction, 0.2);

    EXPECT_THROW(applySearchSpec(
                     config, SearchSpec::parse("successive-halving:"
                                               "step=0.5")),
                 ConfigError);
    EXPECT_THROW(applySearchSpec(
                     config, SearchSpec::parse("successive-halving:"
                                               "rungs=0")),
                 ConfigError);
    EXPECT_THROW(applySearchSpec(config, SearchSpec::parse("grid")),
                 ConfigError);
}

TEST(SearchConfigTest, ValidateCatchesNonsense)
{
    SearchConfig config = synthConfig(1);
    config.rungs.clear();
    config.randomCandidates = 0;
    config.injectionRate = -1.0;
    const auto problems = config.validate();
    EXPECT_GE(problems.size(), 3u);
    EXPECT_THROW(SearchDriver{config}, ConfigError);
}

TEST(SearchDriverTest, CandidateSetDeterministicAndDeduped)
{
    SearchConfig config = synthConfig(7);
    Candidate dup;  // defaults, listed twice: must collapse to one
    config.seeded = {dup, dup};

    const auto first = SearchDriver::candidateSet(config);
    const auto second = SearchDriver::candidateSet(config);
    ASSERT_EQ(first.size(), second.size());
    EXPECT_EQ(first.size(), 1 + config.randomCandidates);
    for (std::size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(canonicalJson(first[i].toJson()).dump(),
                  canonicalJson(second[i].toJson()).dump());
        EXPECT_LT(first[i].tlLow, first[i].tlHigh);
    }
}

TEST(SearchDriverTest, SameSeedBitIdenticalFrontAndJournal)
{
    SearchConfig config = synthConfig(42);
    config.journalPath = tmpPath("search_journal_a.jsonl");
    const SearchOutcome a = runSynth(config);

    config.journalPath = tmpPath("search_journal_b.jsonl");
    const SearchOutcome b = runSynth(config);

    EXPECT_TRUE(a.completed);
    EXPECT_TRUE(b.completed);
    EXPECT_FALSE(a.front.empty());
    EXPECT_EQ(a.front.toJson().dump(), b.front.toJson().dump());
    ASSERT_EQ(a.journal.size(), b.journal.size());
    EXPECT_EQ(fileBytes(tmpPath("search_journal_a.jsonl")),
              fileBytes(tmpPath("search_journal_b.jsonl")));
}

TEST(SearchDriverTest, NeverDiscardsTrueParetoPoint)
{
    bool sawCulling = false;
    for (std::uint64_t seed : {11ull, 23ull, 99ull, 1234ull}) {
        const SearchConfig config = synthConfig(seed);
        const SearchOutcome outcome = runSynth(config);
        ASSERT_TRUE(outcome.completed);
        sawCulling = sawCulling || outcome.culled > 0;

        // Brute force: the true front of every candidate's closed-form
        // full-fidelity objectives (zero fidelity error at the last
        // rung, so searched values match the closed form exactly).
        ParetoFront truth(2);
        for (std::size_t i = 0; i < outcome.candidates.size(); ++i) {
            double latency = 0.0, power = 0.0;
            synthFullObjectives(outcome.candidates[i], latency, power);
            truth.insert({{latency, power}, std::to_string(i), {}});
        }
        EXPECT_EQ(frontObjectives(outcome.front), frontObjectives(truth))
            << "seed " << seed;
    }
    // The property must not hold vacuously: at least one run has to
    // have actually terminated candidates early.
    EXPECT_TRUE(sawCulling);
}

TEST(SearchDriverTest, SuccessiveHalvingSavesFullEvaluations)
{
    const SearchOutcome outcome = runSynth(synthConfig(42));
    ASSERT_TRUE(outcome.completed);
    EXPECT_GT(outcome.culled, 0u);
    EXPECT_LT(outcome.networkEvalsFull, outcome.candidates.size());
    EXPECT_EQ(outcome.finalSurvivors.size() + outcome.culled,
              outcome.candidates.size());
}

TEST(SearchDriverTest, KilledRunResumesToIdenticalFrontAndJournal)
{
    // Cold reference: unlimited budget.
    SearchConfig config = synthConfig(777);
    config.journalPath = tmpPath("search_cold.jsonl");
    const SearchOutcome cold = runSynth(config);
    ASSERT_TRUE(cold.completed);

    // "Kill" after the first rung: budget == candidate count, so rung 0
    // exactly exhausts it and rung 1 stops at the boundary.
    const std::size_t count = SearchDriver::candidateSet(config).size();
    config.journalPath = tmpPath("search_killed.jsonl");
    config.maxNetworkEvals = count;
    const SearchOutcome killed = runSynth(config);
    EXPECT_FALSE(killed.completed);
    EXPECT_EQ(killed.networkEvals, count);
    EXPECT_LT(killed.journal.size(), cold.journal.size());
    EXPECT_TRUE(killed.front.empty());

    // Resume from the killed journal, rewriting it in place — the
    // classic `--resume <journal>` flow.
    config.maxNetworkEvals = 0;
    config.warmJournals = {config.journalPath};
    CounterRegistry registry;
    const SearchOutcome resumed = runSynth(config, &registry);
    ASSERT_TRUE(resumed.completed);
    EXPECT_GT(registry.counterValue("search.cache_hits"), 0u);
    EXPECT_LT(resumed.networkEvals, cold.networkEvals);
    EXPECT_EQ(resumed.front.toJson().dump(), cold.front.toJson().dump());
    EXPECT_EQ(fileBytes(tmpPath("search_killed.jsonl")),
              fileBytes(tmpPath("search_cold.jsonl")));
}

TEST(SearchDriverTest, TornJournalTailIsDiscardedOnResume)
{
    SearchConfig config = synthConfig(5);
    config.journalPath = tmpPath("search_torn.jsonl");
    const SearchOutcome cold = runSynth(config);
    ASSERT_TRUE(cold.completed);

    // Chop the last record in half — what a SIGKILL mid-write leaves.
    const std::string bytes = fileBytes(config.journalPath);
    std::ofstream out(config.journalPath,
                      std::ios::binary | std::ios::trunc);
    out << bytes.substr(0, bytes.size() - 40);
    out.close();

    config.warmJournals = {config.journalPath};
    const SearchOutcome resumed = runSynth(config);
    ASSERT_TRUE(resumed.completed);
    EXPECT_EQ(resumed.front.toJson().dump(), cold.front.toJson().dump());
    EXPECT_EQ(fileBytes(config.journalPath), bytes);
}

TEST(SearchDriverTest, WarmCacheSecondRunDoesZeroNetworkEvals)
{
    // Real network end-to-end: small mesh, tiny windows, two rungs.
    SearchConfig config = realConfig();
    config.journalPath = tmpPath("search_real.jsonl");

    CounterRegistry coldCounters;
    SearchDriver cold(config, &coldCounters);
    const SearchOutcome first = cold.run();
    ASSERT_TRUE(first.completed);
    EXPECT_FALSE(first.front.empty());
    EXPECT_GT(coldCounters.counterValue("search.network_evals"), 0u);
    const std::string coldBytes = fileBytes(config.journalPath);

    config.warmJournals = {config.journalPath};
    CounterRegistry warmCounters;
    SearchDriver warm(config, &warmCounters);
    const SearchOutcome second = warm.run();
    ASSERT_TRUE(second.completed);

    // The satellite contract: a warmed re-run simulates NOTHING.
    EXPECT_EQ(warmCounters.counterValue("search.network_evals"), 0u);
    EXPECT_EQ(warmCounters.counterValue("search.cache_hits"),
              first.journal.size());
    EXPECT_EQ(second.front.toJson().dump(), first.front.toJson().dump());
    EXPECT_EQ(fileBytes(config.journalPath), coldBytes);
}

TEST(SearchDriverTest, EvaluateFullMatchesSearchLastRung)
{
    SearchConfig config = synthConfig(42);
    CounterRegistry registry;
    SearchDriver driver(config, &registry);
    driver.setEvaluator(synthEvaluator(config.base.measure));
    const SearchOutcome outcome = driver.run();
    ASSERT_TRUE(outcome.completed);
    ASSERT_FALSE(outcome.finalSurvivors.empty());

    // A survivor's full evaluation is already cached: same key, same
    // bits, zero extra network evaluations.
    const std::uint64_t evalsBefore =
        registry.counterValue("search.network_evals");
    const auto rec = driver.evaluateFull(
        outcome.candidates[outcome.finalSurvivors.front()]);
    EXPECT_EQ(registry.counterValue("search.network_evals"), evalsBefore);
    EXPECT_TRUE(outcome.front.covers(rec.objectives()));

    // A config the search culled early still evaluates deterministically
    // through the same derivation (twice -> one miss, then one hit).
    Candidate fresh;
    fresh.tlLow = 0.111;
    fresh.tlHigh = 0.222;
    fresh.weight = 1.5;
    const auto miss = driver.evaluateFull(fresh);
    const auto hit = driver.evaluateFull(fresh);
    EXPECT_EQ(registry.counterValue("search.network_evals"),
              evalsBefore + 1);
    EXPECT_EQ(miss.key, hit.key);
    EXPECT_EQ(miss.results.avgLatencyCycles,
              hit.results.avgLatencyCycles);
}
