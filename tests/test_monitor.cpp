/**
 * @file
 * TrafficProbe tests on a live 4x4 network (DVS off so the probe owns
 * the measurement windows).
 */

#include <gtest/gtest.h>

#include "core/monitor.hpp"
#include "network/network.hpp"
#include "traffic/pattern_traffic.hpp"

using dvsnet::ChannelId;
using dvsnet::NodeId;
using dvsnet::core::TrafficProbe;
using dvsnet::network::Network;
using dvsnet::network::NetworkConfig;
using dvsnet::network::PolicyKind;
using dvsnet::traffic::Pattern;
using dvsnet::traffic::PatternTraffic;

namespace
{

struct ProbeHarness
{
    NetworkConfig cfg;
    Network net;
    PatternTraffic traffic;
    TrafficProbe probe;

    explicit ProbeHarness(double rate)
        : cfg(makeCfg()),
          net(cfg),
          traffic(net.topology(), Pattern::Neighbor, rate, 3),
          probe(makeProbe(net))
    {
        net.attachTraffic(traffic);
        probe.start();
    }

    static NetworkConfig
    makeCfg()
    {
        NetworkConfig c;
        c.radix = 4;
        c.policy = PolicyKind::None;
        return c;
    }

    static TrafficProbe
    makeProbe(Network &net)
    {
        // Probe channel 0 and its endpoints.
        const auto &ch = net.topology().channels()[0];
        return TrafficProbe(net.kernel(), &net.channel(ch.id),
                            &net.router(ch.src), ch.srcPort,
                            &net.router(ch.dst), ch.dstPort, 50);
    }
};

} // namespace

TEST(TrafficProbe, CollectsWindows)
{
    ProbeHarness h(0.01);
    h.net.run(1000, 20000);
    EXPECT_EQ(h.probe.windows(), (1000 + 20000) / 50);
    EXPECT_EQ(h.probe.linkUtilHist().total(), h.probe.windows());
}

TEST(TrafficProbe, UtilizationGrowsWithLoad)
{
    ProbeHarness light(0.005);
    light.net.run(1000, 30000);
    ProbeHarness heavy(0.05);
    heavy.net.run(1000, 30000);
    EXPECT_GT(heavy.probe.meanLinkUtil(),
              light.probe.meanLinkUtil() * 2.0);
}

TEST(TrafficProbe, MeansAreInRange)
{
    ProbeHarness h(0.03);
    h.net.run(1000, 30000);
    EXPECT_GE(h.probe.meanLinkUtil(), 0.0);
    EXPECT_LE(h.probe.meanLinkUtil(), 1.0);
    EXPECT_GE(h.probe.meanBufferUtil(), 0.0);
    EXPECT_LE(h.probe.meanBufferUtil(), 1.0);
    EXPECT_GE(h.probe.meanBufferAge(), 0.0);
}

TEST(TrafficProbe, BufferAgeReflectsPipelineMinimum)
{
    // At light load flits spend RC+VA = 2 cycles buffered before SA.
    ProbeHarness h(0.01);
    h.net.run(1000, 30000);
    if (h.probe.bufferAgeHist().total() > 0) {
        EXPECT_GE(h.probe.meanBufferAge(), 2.0);
    }
}

TEST(TrafficProbe, IdleNetworkShowsZeroUtil)
{
    NetworkConfig cfg;
    cfg.radix = 4;
    cfg.policy = PolicyKind::None;
    Network net(cfg);
    const auto &ch = net.topology().channels()[0];
    TrafficProbe probe(net.kernel(), &net.channel(ch.id),
                       &net.router(ch.src), ch.srcPort,
                       &net.router(ch.dst), ch.dstPort, 50);
    probe.start();
    net.run(100, 10000);
    EXPECT_DOUBLE_EQ(probe.meanLinkUtil(), 0.0);
    EXPECT_DOUBLE_EQ(probe.meanBufferUtil(), 0.0);
    EXPECT_EQ(probe.bufferAgeHist().total(), 0u);  // no departures
}
