/**
 * @file
 * Network delivery-notification tests: a generator that opts in via
 * wantsDeliveries() receives exactly one onDelivered() per packet, with
 * the original PacketRequest — size, class, and tag — echoed back and a
 * causally-sane arrival tick.  Open-loop generators (the default) must
 * stay entirely unaffected.
 */

#include <gtest/gtest.h>

#include <vector>

#include "network/network.hpp"
#include "traffic/traffic.hpp"

using dvsnet::cyclesToTicks;
using dvsnet::NodeId;
using dvsnet::Tick;
using dvsnet::network::Network;
using dvsnet::network::NetworkConfig;
using dvsnet::network::PolicyKind;
using dvsnet::traffic::PacketRequest;
using dvsnet::traffic::PacketSink;

namespace
{

/** Injects a fixed list of tagged packets and records the echoes. */
class EchoProbe : public dvsnet::traffic::TrafficGenerator
{
  public:
    explicit EchoProbe(std::vector<PacketRequest> sends)
        : sends_(std::move(sends))
    {
    }

    void
    start(dvsnet::sim::Kernel &kernel, PacketSink sink) override
    {
        kernel_ = &kernel;
        sink_ = std::move(sink);
        for (std::size_t k = 0; k < sends_.size(); ++k) {
            kernel.at(cyclesToTicks(static_cast<dvsnet::Cycle>(
                          10 * (k + 1))),
                      [this, k] {
                          injectTicks_.push_back(kernel_->now());
                          sink_(sends_[k]);
                      });
        }
    }

    bool wantsDeliveries() const override { return true; }

    void
    onDelivered(const PacketRequest &request, Tick arrival) override
    {
        echoes_.push_back({request, arrival});
    }

    const char *name() const override { return "echo-probe"; }

    struct Echo
    {
        PacketRequest request;
        Tick arrival;
    };

    std::vector<PacketRequest> sends_;
    std::vector<Tick> injectTicks_;
    std::vector<Echo> echoes_;
    dvsnet::sim::Kernel *kernel_ = nullptr;
    PacketSink sink_;
};

NetworkConfig
smallMesh()
{
    NetworkConfig cfg;
    cfg.radix = 4;
    cfg.policy = PolicyKind::None;
    return cfg;
}

} // namespace

TEST(DeliveryHook, EchoesRequestsWithTagsExactlyOnce)
{
    // Distinct tags, classes, and explicit sizes; one default-size
    // packet (sizeFlits = 0) to cover the expansion path.
    const std::vector<PacketRequest> sends = {
        {0, 15, 1, 0, 1001},
        {15, 0, 5, 1, 1002},
        {3, 12, 0, 2, 1003},  // network default length
        {7, 8, 2, 0, 1004},
    };
    Network net(smallMesh());
    EchoProbe probe(sends);
    net.attachTraffic(probe);
    net.run(0, 2000);

    ASSERT_EQ(probe.echoes_.size(), sends.size());
    // Each send echoed exactly once, request bit-identical (order may
    // differ: different path lengths).
    for (const auto &sent : sends) {
        std::size_t matches = 0;
        for (const auto &echo : probe.echoes_) {
            if (echo.request == sent)
                ++matches;
        }
        EXPECT_EQ(matches, 1u) << "tag " << sent.tag;
    }
    // Arrival ticks are causally sane: after the earliest injection,
    // within the run.
    for (const auto &echo : probe.echoes_) {
        EXPECT_GT(echo.arrival, probe.injectTicks_.front());
        EXPECT_LE(echo.arrival, cyclesToTicks(2000));
    }
}

TEST(DeliveryHook, ArrivalFollowsInjectionPerPacket)
{
    // One packet at a time: arrival must strictly follow its injection.
    Network net(smallMesh());
    EchoProbe probe({{2, 13, 4, 0, 42}});
    net.attachTraffic(probe);
    net.run(0, 1000);

    ASSERT_EQ(probe.echoes_.size(), 1u);
    ASSERT_EQ(probe.injectTicks_.size(), 1u);
    EXPECT_GT(probe.echoes_[0].arrival, probe.injectTicks_[0]);
    EXPECT_EQ(probe.echoes_[0].request.tag, 42u);
}

TEST(DeliveryHook, OpenLoopGeneratorsGetNoCallbacks)
{
    /** Same probe but with the opt-in disabled. */
    class SilentProbe final : public EchoProbe
    {
      public:
        using EchoProbe::EchoProbe;
        bool wantsDeliveries() const override { return false; }
    };

    Network net(smallMesh());
    SilentProbe probe({{0, 15, 1, 0, 7}, {15, 0, 1, 0, 8}});
    net.attachTraffic(probe);
    net.run(0, 1000);

    EXPECT_EQ(net.metrics().packetsEjected(), 2u);
    EXPECT_TRUE(probe.echoes_.empty());
}
