/**
 * @file
 * Single-router microarchitecture tests using stub channels: pipeline
 * latency, credit conservation, wormhole ordering, VC backpressure,
 * BU/BA measurement taps.
 */

#include <gtest/gtest.h>

#include <vector>

#include "router/router.hpp"
#include "router/routing.hpp"
#include "topo/topology.hpp"

using dvsnet::NodeId;
using dvsnet::PortId;
using dvsnet::Tick;
using dvsnet::VcId;
using dvsnet::cyclesToTicks;
using dvsnet::kRouterClockPeriod;
using dvsnet::router::DorRouting;
using dvsnet::router::Flit;
using dvsnet::router::Router;
using dvsnet::router::RouterConfig;
using dvsnet::topo::KAryNCube;

namespace
{

/** Records every flit handed to the channel; always accepts. */
class StubChannel final : public dvsnet::router::FlitChannel
{
  public:
    bool canAccept(Tick) const override { return true; }

    Tick
    send(const Flit &flit, Tick earliest) override
    {
        sent.push_back({flit, earliest});
        return earliest;
    }

    std::vector<std::pair<Flit, Tick>> sent;
};

/** Records credit returns. */
class StubCreditPath final : public dvsnet::router::CreditChannel
{
  public:
    void
    sendCredit(VcId vc, Tick now) override
    {
        credits.push_back({vc, now});
    }

    std::vector<std::pair<VcId, Tick>> credits;
};

/** 2x2 mesh geometry: router 0 with +x neighbor 1 and +y neighbor 2. */
struct Harness
{
    KAryNCube topo{2, 2, false};
    DorRouting routing{topo, 2};
    RouterConfig cfg;
    Router router;
    StubChannel xPlus, yPlus, terminal;
    StubCreditPath creditBack;

    Harness() : cfg(makeCfg()), router(0, cfg, routing)
    {
        router.connectOutput(KAryNCube::dirPort(0, true), &xPlus, 64);
        router.connectOutput(KAryNCube::dirPort(1, true), &yPlus, 64);
        router.connectOutput(topo.terminalPort(), &terminal, 1 << 20);
        // Credits for flits consumed from the -x input port.
        router.connectCreditReturn(KAryNCube::dirPort(0, false),
                                   &creditBack);
    }

    static RouterConfig
    makeCfg()
    {
        RouterConfig c;
        c.numPorts = 5;
        c.numVcs = 2;
        c.bufferPerPort = 128;
        c.pipelineLatency = 13;
        return c;
    }

    /** Deliver a flit into an input port at cycle `cycle`. */
    void
    deliver(PortId inPort, const Flit &flit, dvsnet::Cycle cycle)
    {
        router.flitInbox(inPort).push(cyclesToTicks(cycle), flit);
    }

    /** Step the router through cycles [from, to]. */
    void
    stepTo(dvsnet::Cycle from, dvsnet::Cycle to)
    {
        for (dvsnet::Cycle c = from; c <= to; ++c)
            router.step(cyclesToTicks(c));
    }
};

Flit
packetFlit(std::uint64_t pkt, std::uint16_t seq, std::uint16_t len,
           NodeId dst, VcId vc)
{
    Flit f;
    f.packet = pkt;
    f.seq = seq;
    f.packetLen = len;
    f.src = 0;
    f.dst = dst;
    f.vc = vc;
    return f;
}

} // namespace

TEST(Router, HeadFlitTraversesAfterThreeStages)
{
    Harness h;
    // Single-flit packet to node 1 (+x from node 0).
    h.deliver(h.topo.terminalPort(), packetFlit(1, 0, 1, 1, 0), 1);
    h.stepTo(1, 10);
    ASSERT_EQ(h.xPlus.sent.size(), 1u);
    // Arrives cycle 1: RC@1, VA@2, SA@3 -> handed to the channel with
    // earliest = cycle 3 + (pipelineLatency - 2) = cycle 14.
    EXPECT_EQ(h.xPlus.sent[0].second, cyclesToTicks(3 + 11));
}

TEST(Router, BodyFlitsFollowAtOnePerCycle)
{
    Harness h;
    for (std::uint16_t s = 0; s < 5; ++s)
        h.deliver(h.topo.terminalPort(), packetFlit(1, s, 5, 1, 0),
                  1 + s);
    h.stepTo(1, 12);
    ASSERT_EQ(h.xPlus.sent.size(), 5u);
    for (std::uint16_t s = 0; s < 5; ++s) {
        EXPECT_EQ(h.xPlus.sent[s].first.seq, s);
        EXPECT_EQ(h.xPlus.sent[s].second, cyclesToTicks(14 + s));
    }
}

TEST(Router, FlitsKeepPacketOrder)
{
    Harness h;
    for (std::uint16_t s = 0; s < 5; ++s)
        h.deliver(KAryNCube::dirPort(0, false),
                  packetFlit(7, s, 5, 1, 1), 1);
    h.stepTo(1, 20);
    ASSERT_EQ(h.xPlus.sent.size(), 5u);
    for (std::uint16_t s = 0; s < 5; ++s)
        EXPECT_EQ(h.xPlus.sent[s].first.seq, s);
}

TEST(Router, OutputFlitCarriesDownstreamVc)
{
    Harness h;
    h.deliver(h.topo.terminalPort(), packetFlit(1, 0, 1, 1, 0), 1);
    h.stepTo(1, 10);
    ASSERT_EQ(h.xPlus.sent.size(), 1u);
    const VcId outVc = h.xPlus.sent[0].first.vc;
    EXPECT_TRUE(outVc == 0 || outVc == 1);
}

TEST(Router, CreditReturnedWhenFlitLeavesBuffer)
{
    Harness h;
    h.deliver(KAryNCube::dirPort(0, false), packetFlit(1, 0, 1, 1, 1), 1);
    h.stepTo(1, 10);
    ASSERT_EQ(h.creditBack.credits.size(), 1u);
    EXPECT_EQ(h.creditBack.credits[0].first, 1);  // the VC it occupied
    EXPECT_EQ(h.creditBack.credits[0].second, cyclesToTicks(3));
}

TEST(Router, NoCreditForTerminalInjection)
{
    Harness h;
    h.deliver(h.topo.terminalPort(), packetFlit(1, 0, 1, 1, 0), 1);
    h.stepTo(1, 10);
    EXPECT_TRUE(h.creditBack.credits.empty());
}

TEST(Router, CreditExhaustionStallsAndRecovers)
{
    Harness h;
    // Rewire +x with only 2 credits per VC.
    StubChannel tiny;
    h.router.connectOutput(KAryNCube::dirPort(0, true), &tiny, 2);
    for (std::uint16_t s = 0; s < 5; ++s)
        h.deliver(h.topo.terminalPort(), packetFlit(1, s, 5, 1, 0), 1 + s);
    h.stepTo(1, 30);
    // Only 2 flits can leave before credits run dry.
    EXPECT_EQ(tiny.sent.size(), 2u);

    // Return one credit for the VC the packet holds.
    const VcId vc = tiny.sent[0].first.vc;
    h.router.creditInbox(KAryNCube::dirPort(0, true))
        .push(cyclesToTicks(31), vc);
    h.stepTo(31, 40);
    EXPECT_EQ(tiny.sent.size(), 3u);
}

TEST(Router, TwoPacketsToDifferentOutputsProceedInParallel)
{
    Harness h;
    h.deliver(h.topo.terminalPort(), packetFlit(1, 0, 1, 1, 0), 1);
    h.deliver(KAryNCube::dirPort(0, false), packetFlit(2, 0, 1, 2, 0), 1);
    h.stepTo(1, 12);
    EXPECT_EQ(h.xPlus.sent.size(), 1u);
    EXPECT_EQ(h.yPlus.sent.size(), 1u);
}

TEST(Router, SecondPacketInSameVcWaitsForTail)
{
    Harness h;
    const PortId in = KAryNCube::dirPort(0, false);
    // Two 2-flit packets back-to-back in the same input VC.
    h.deliver(in, packetFlit(1, 0, 2, 1, 0), 1);
    h.deliver(in, packetFlit(1, 1, 2, 1, 0), 2);
    h.deliver(in, packetFlit(2, 0, 2, 1, 0), 3);
    h.deliver(in, packetFlit(2, 1, 2, 1, 0), 4);
    h.stepTo(1, 30);
    ASSERT_EQ(h.xPlus.sent.size(), 4u);
    // Packet 2's head re-runs RC/VA after packet 1's tail departs.
    EXPECT_EQ(h.xPlus.sent[1].first.packet, 1u);
    EXPECT_EQ(h.xPlus.sent[2].first.packet, 2u);
    EXPECT_GE(h.xPlus.sent[2].second,
              h.xPlus.sent[1].second + 2 * kRouterClockPeriod);
}

TEST(Router, BlockedChannelExertsBackpressure)
{
    // A channel that never accepts: flits stay buffered.
    class ClosedChannel final : public dvsnet::router::FlitChannel
    {
      public:
        bool canAccept(Tick) const override { return false; }
        Tick send(const Flit &, Tick) override
        {
            ADD_FAILURE() << "send on closed channel";
            return 0;
        }
    };

    Harness h;
    ClosedChannel closed;
    h.router.connectOutput(KAryNCube::dirPort(0, true), &closed, 64);
    h.deliver(h.topo.terminalPort(), packetFlit(1, 0, 1, 1, 0), 1);
    h.stepTo(1, 20);
    EXPECT_EQ(h.router.bufferOccupancy(h.topo.terminalPort()), 1u);
    EXPECT_FALSE(h.router.isIdle());
}

TEST(Router, IdleReflectsState)
{
    Harness h;
    EXPECT_TRUE(h.router.isIdle());
    h.deliver(h.topo.terminalPort(), packetFlit(1, 0, 1, 1, 0), 1);
    EXPECT_FALSE(h.router.isIdle());
    h.stepTo(1, 10);
    EXPECT_TRUE(h.router.isIdle());
}

TEST(Router, TerminalFreeSlotsTracksOccupancy)
{
    Harness h;
    EXPECT_EQ(h.router.terminalFreeSlots(0), 64u);
    h.deliver(h.topo.terminalPort(), packetFlit(1, 0, 5, 1, 0), 1);
    h.router.step(cyclesToTicks(1));
    EXPECT_EQ(h.router.terminalFreeSlots(0), 63u);
}

TEST(Router, BufferUtilWindowSeesDownstreamOccupancy)
{
    Harness h;
    const PortId out = KAryNCube::dirPort(0, true);
    h.deliver(h.topo.terminalPort(), packetFlit(1, 0, 1, 1, 0), 1);
    h.stepTo(1, 10);
    // One flit committed downstream, no credit returned yet: occupancy
    // 1 of 128 for part of the window.
    const double bu = h.router.takeBufferUtilWindow(out,
                                                    cyclesToTicks(10));
    EXPECT_GT(bu, 0.0);
    EXPECT_LT(bu, 0.05);
    EXPECT_NEAR(h.router.bufferUtilNow(out), 1.0 / 128.0, 1e-9);
}

TEST(Router, BufferAgeWindowCountsResidency)
{
    Harness h;
    h.deliver(KAryNCube::dirPort(0, false), packetFlit(1, 0, 1, 1, 0), 1);
    h.stepTo(1, 10);
    const auto [ageSum, departed] =
        h.router.takeBufferAgeWindow(KAryNCube::dirPort(0, false));
    EXPECT_EQ(departed, 1u);
    EXPECT_DOUBLE_EQ(ageSum, 2.0);  // arrived cycle 1, SA at cycle 3
    // Window resets.
    const auto [a2, d2] =
        h.router.takeBufferAgeWindow(KAryNCube::dirPort(0, false));
    EXPECT_EQ(d2, 0u);
    EXPECT_DOUBLE_EQ(a2, 0.0);
}

TEST(Router, ForwardedWindowCounts)
{
    Harness h;
    for (std::uint16_t s = 0; s < 3; ++s)
        h.deliver(h.topo.terminalPort(), packetFlit(1, s, 3, 1, 0), 1 + s);
    h.stepTo(1, 12);
    const PortId out = KAryNCube::dirPort(0, true);
    EXPECT_EQ(h.router.takeForwardedWindow(out), 3u);
    EXPECT_EQ(h.router.takeForwardedWindow(out), 0u);
}

TEST(Router, StatsAccumulate)
{
    Harness h;
    for (std::uint16_t s = 0; s < 5; ++s)
        h.deliver(h.topo.terminalPort(), packetFlit(1, s, 5, 1, 0), 1 + s);
    h.stepTo(1, 20);
    EXPECT_EQ(h.router.stats().flitsArrived, 5u);
    EXPECT_EQ(h.router.stats().flitsForwarded, 5u);
    EXPECT_EQ(h.router.stats().headsRouted, 1u);
    EXPECT_EQ(h.router.stats().vcGrants, 1u);
    EXPECT_EQ(h.router.stats().switchGrants, 5u);
}

TEST(Router, EjectionAtDestination)
{
    Harness h;
    // Packet addressed to node 0 itself: goes out the terminal port.
    h.deliver(KAryNCube::dirPort(0, false), packetFlit(1, 0, 1, 0, 0), 1);
    h.stepTo(1, 10);
    EXPECT_EQ(h.terminal.sent.size(), 1u);
    EXPECT_TRUE(h.xPlus.sent.empty());
}
