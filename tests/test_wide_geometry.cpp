/**
 * @file
 * Wide-geometry fast-path tests: routers and allocators whose dense
 * input-VC space exceeds 64 bits must run the same mask-based code as
 * the classic geometries and produce results matching an independent
 * reference model — no assert, no fallback path, no behavior change at
 * the single-word/multi-word boundary.
 *
 * Three layers:
 *  - randomized separable-allocator equivalence against naive reference
 *    implementations, at geometries straddling the 64-bit boundary
 *    (5x12 = 60, 5x13 = 65, 8x12 = 96 dense input VCs);
 *  - whole-network lockstep equivalence (serial vs partitioned) on wide
 *    configs — a 4x4 mesh with 13 VCs/port and a 3x3x3 torus with
 *    12 VCs/port (7 ports x 12 VCs = 84 dense VCs);
 *  - geometry-limit validation: configs beyond the router/limits.hpp
 *    capacities must surface as ConfigError naming the bound.
 */

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "network/network.hpp"
#include "network/sweep.hpp"
#include "router/allocator.hpp"
#include "router/limits.hpp"
#include "router/router.hpp"
#include "workload/factory.hpp"

using dvsnet::ConfigError;
using dvsnet::PortId;
using dvsnet::Tick;
using dvsnet::VcId;
using dvsnet::network::ExperimentSpec;
using dvsnet::network::Network;
using dvsnet::network::PolicyKind;
using dvsnet::network::RunResults;
using dvsnet::router::RouterConfig;
using dvsnet::router::SeparableSwitchAllocator;
using dvsnet::router::SeparableVcAllocator;
using dvsnet::router::SwitchRequest;
using dvsnet::router::VcGrant;
using dvsnet::router::VcRequest;

namespace
{

/**
 * Reference VC allocator: same separable output-side algorithm as
 * SeparableVcAllocator, written with naive per-index loops and its own
 * rotation state — no bitmasks anywhere.  Resources are visited in
 * ascending (port, vc) order; each free resource somebody wants picks
 * the first not-yet-granted requester at or cyclically after its
 * rotation pointer, then advances the pointer past the winner.
 */
class ReferenceVcAllocator
{
  public:
    ReferenceVcAllocator(PortId numPorts, std::int32_t numVcs,
                         std::int32_t numRequesters)
        : numPorts_(numPorts), numVcs_(numVcs),
          numRequesters_(numRequesters),
          next_(static_cast<std::size_t>(numPorts) *
                    static_cast<std::size_t>(numVcs),
                0)
    {}

    std::vector<VcGrant>
    allocate(const std::vector<VcRequest> &requests,
             const std::vector<std::uint32_t> &freeVcMasks)
    {
        std::vector<VcGrant> grants;
        std::vector<bool> granted(
            static_cast<std::size_t>(numRequesters_), false);
        for (PortId port = 0; port < numPorts_; ++port) {
            for (VcId vc = 0; vc < numVcs_; ++vc) {
                if ((freeVcMasks[static_cast<std::size_t>(port)] &
                     (1u << vc)) == 0)
                    continue;
                std::vector<bool> wants(
                    static_cast<std::size_t>(numRequesters_), false);
                bool any = false;
                for (const auto &req : requests) {
                    if (req.outPort == port &&
                        (req.vcMask & (1u << vc)) != 0 &&
                        !granted[static_cast<std::size_t>(
                            req.requester)]) {
                        wants[static_cast<std::size_t>(req.requester)] =
                            true;
                        any = true;
                    }
                }
                if (!any)
                    continue;
                auto &rot = next_[static_cast<std::size_t>(port) *
                                      static_cast<std::size_t>(numVcs_) +
                                  static_cast<std::size_t>(vc)];
                for (std::int32_t i = 0; i < numRequesters_; ++i) {
                    const std::int32_t idx = (rot + i) % numRequesters_;
                    if (wants[static_cast<std::size_t>(idx)]) {
                        grants.push_back({idx, port, vc});
                        granted[static_cast<std::size_t>(idx)] = true;
                        rot = (idx + 1) % numRequesters_;
                        break;
                    }
                }
            }
        }
        return grants;
    }

  private:
    PortId numPorts_;
    std::int32_t numVcs_;
    std::int32_t numRequesters_;
    std::vector<std::int32_t> next_;
};

/** Reference input-first switch allocator, same naive-loop style. */
class ReferenceSwitchAllocator
{
  public:
    ReferenceSwitchAllocator(PortId numPorts, std::int32_t numVcs)
        : numPorts_(numPorts), numVcs_(numVcs),
          inputNext_(static_cast<std::size_t>(numPorts), 0),
          outputNext_(static_cast<std::size_t>(numPorts), 0)
    {}

    std::vector<dvsnet::router::SwitchGrant>
    allocate(const std::vector<SwitchRequest> &requests)
    {
        // Stage 1: one VC per requesting input port (round-robin over
        // its requesting VCs); first request per (port, vc) defines the
        // output port, as in the production shim.
        std::vector<std::int32_t> stageOne(
            static_cast<std::size_t>(numPorts_), -1);
        std::vector<PortId> outOf(
            static_cast<std::size_t>(numPorts_) *
                static_cast<std::size_t>(numVcs_),
            dvsnet::kInvalidId);
        std::vector<std::vector<bool>> vcReq(
            static_cast<std::size_t>(numPorts_),
            std::vector<bool>(static_cast<std::size_t>(numVcs_), false));
        for (const auto &req : requests) {
            auto &cell = outOf[static_cast<std::size_t>(req.inPort) *
                                   static_cast<std::size_t>(numVcs_) +
                               static_cast<std::size_t>(req.inVc)];
            if (!vcReq[static_cast<std::size_t>(req.inPort)]
                      [static_cast<std::size_t>(req.inVc)]) {
                vcReq[static_cast<std::size_t>(req.inPort)]
                     [static_cast<std::size_t>(req.inVc)] = true;
                cell = req.outPort;
            }
        }
        for (PortId p = 0; p < numPorts_; ++p) {
            bool anyReq = false;
            for (VcId v = 0; v < numVcs_; ++v)
                anyReq = anyReq ||
                         vcReq[static_cast<std::size_t>(p)]
                              [static_cast<std::size_t>(v)];
            if (!anyReq)
                continue;
            auto &rot = inputNext_[static_cast<std::size_t>(p)];
            for (std::int32_t i = 0; i < numVcs_; ++i) {
                const std::int32_t v = (rot + i) % numVcs_;
                if (vcReq[static_cast<std::size_t>(p)]
                         [static_cast<std::size_t>(v)]) {
                    stageOne[static_cast<std::size_t>(p)] = v;
                    rot = (v + 1) % numVcs_;
                    break;
                }
            }
        }

        // Stage 2: one stage-1 winner per output port.
        std::vector<dvsnet::router::SwitchGrant> grants;
        for (PortId out = 0; out < numPorts_; ++out) {
            std::vector<bool> contend(
                static_cast<std::size_t>(numPorts_), false);
            bool any = false;
            for (PortId p = 0; p < numPorts_; ++p) {
                const std::int32_t v =
                    stageOne[static_cast<std::size_t>(p)];
                if (v >= 0 &&
                    outOf[static_cast<std::size_t>(p) *
                              static_cast<std::size_t>(numVcs_) +
                          static_cast<std::size_t>(v)] == out) {
                    contend[static_cast<std::size_t>(p)] = true;
                    any = true;
                }
            }
            if (!any)
                continue;
            auto &rot = outputNext_[static_cast<std::size_t>(out)];
            for (std::int32_t i = 0; i < numPorts_; ++i) {
                const std::int32_t p = (rot + i) % numPorts_;
                if (contend[static_cast<std::size_t>(p)]) {
                    grants.push_back(
                        {p, stageOne[static_cast<std::size_t>(p)], out});
                    rot = (p + 1) % numPorts_;
                    break;
                }
            }
        }
        return grants;
    }

  private:
    PortId numPorts_;
    std::int32_t numVcs_;
    std::vector<std::int32_t> inputNext_;
    std::vector<std::int32_t> outputNext_;
};

/**
 * Drive SeparableVcAllocator and the reference with the same random
 * request stream for `rounds` invocations; grants must match exactly
 * (contents and order) every round, so rotation state stays in sync.
 */
void
vcAllocatorMatchesReference(PortId numPorts, std::int32_t numVcs,
                            std::uint32_t seed, std::int32_t rounds = 400)
{
    const std::int32_t requesters = numPorts * numVcs;
    SeparableVcAllocator dut(numPorts, numVcs, requesters);
    ReferenceVcAllocator ref(numPorts, numVcs, requesters);
    std::mt19937 rng(seed);
    std::uniform_int_distribution<std::int32_t> portDist(0, numPorts - 1);
    std::uniform_int_distribution<std::uint32_t> maskDist(
        1, (numVcs >= 32 ? ~0u : (1u << numVcs) - 1));

    for (std::int32_t round = 0; round < rounds; ++round) {
        // Random subset of requesters, each with a random target port
        // and VC mask; random free map.
        std::vector<VcRequest> requests;
        for (std::int32_t r = 0; r < requesters; ++r) {
            if ((rng() & 3u) != 0)
                continue;  // ~25% of input VCs request each round
            requests.push_back({r, portDist(rng), maskDist(rng)});
        }
        std::vector<std::uint32_t> freeMasks(
            static_cast<std::size_t>(numPorts));
        for (auto &m : freeMasks)
            m = static_cast<std::uint32_t>(rng()) & maskDist.max();

        const auto &got = dut.allocate(requests, freeMasks);
        const auto want = ref.allocate(requests, freeMasks);
        ASSERT_EQ(got.size(), want.size()) << "round=" << round;
        for (std::size_t i = 0; i < want.size(); ++i) {
            EXPECT_EQ(got[i].requester, want[i].requester)
                << "round=" << round << " grant=" << i;
            EXPECT_EQ(got[i].outPort, want[i].outPort)
                << "round=" << round << " grant=" << i;
            EXPECT_EQ(got[i].outVc, want[i].outVc)
                << "round=" << round << " grant=" << i;
        }
    }
}

} // namespace

TEST(WideGeometryVcAllocator, MatchesReferenceBelowBoundary5x12)
{
    vcAllocatorMatchesReference(5, 12, 0xA1);  // 60 requesters: 1 word
}

TEST(WideGeometryVcAllocator, MatchesReferenceAboveBoundary5x13)
{
    vcAllocatorMatchesReference(5, 13, 0xB2);  // 65 requesters: 2 words
}

TEST(WideGeometryVcAllocator, MatchesReferenceWide8x12)
{
    vcAllocatorMatchesReference(8, 12, 0xC3);  // 96 requesters
}

TEST(WideGeometrySwitchAllocator, MatchesReferenceAtWideVcCounts)
{
    const PortId numPorts = 8;
    const std::int32_t numVcs = 13;
    SeparableSwitchAllocator dut(numPorts, numVcs);
    ReferenceSwitchAllocator ref(numPorts, numVcs);
    std::mt19937 rng(0xD4);
    std::uniform_int_distribution<PortId> portDist(0, numPorts - 1);
    std::uniform_int_distribution<VcId> vcDist(0, numVcs - 1);

    for (std::int32_t round = 0; round < 600; ++round) {
        std::vector<SwitchRequest> requests;
        const std::int32_t n =
            std::uniform_int_distribution<std::int32_t>(0, 20)(rng);
        for (std::int32_t i = 0; i < n; ++i)
            requests.push_back({portDist(rng), vcDist(rng),
                                portDist(rng)});

        const auto &got = dut.allocate(requests);
        const auto want = ref.allocate(requests);
        ASSERT_EQ(got.size(), want.size()) << "round=" << round;
        for (std::size_t i = 0; i < want.size(); ++i) {
            EXPECT_EQ(got[i].inPort, want[i].inPort) << "round=" << round;
            EXPECT_EQ(got[i].inVc, want[i].inVc) << "round=" << round;
            EXPECT_EQ(got[i].outPort, want[i].outPort)
                << "round=" << round;
        }
    }
}

namespace
{

/** Serial-vs-partitioned bit-equality on a wide config (the same
 *  contract test_parallel_stepper.cpp pins for classic geometries). */
void
expectWideLockstep(ExperimentSpec spec, double rate, std::uint64_t seed,
                   const std::vector<std::int32_t> &partitionCounts)
{
    auto capture = [&](std::int32_t partitions) {
        ExperimentSpec s = spec;
        s.network.partitions = partitions;
        Network net(s.network);
        dvsnet::workload::WorkloadContext context{net.topology(), rate,
                                                  seed, s.workload};
        const auto generator =
            dvsnet::workload::buildWorkload(s.workloadSpec, context);
        net.attachTraffic(*generator);
        RunResults res = net.run(s.warmup, s.measure);
        return std::make_pair(res, net.observability().toJson().dump(2));
    };

    const auto serial = capture(1);
    EXPECT_EQ(serial.first.invariantFailures, 0u);
    EXPECT_GT(serial.first.packetsDelivered, 0u);
    for (const std::int32_t p : partitionCounts) {
        SCOPED_TRACE(testing::Message() << "partitions=" << p);
        const auto parallel = capture(p);
        EXPECT_EQ(serial.first.packetsCreated,
                  parallel.first.packetsCreated);
        EXPECT_EQ(serial.first.packetsDelivered,
                  parallel.first.packetsDelivered);
        EXPECT_EQ(serial.first.flitsEjected, parallel.first.flitsEjected);
        EXPECT_EQ(serial.first.avgLatencyCycles,
                  parallel.first.avgLatencyCycles);
        EXPECT_EQ(serial.first.maxLatencyCycles,
                  parallel.first.maxLatencyCycles);
        EXPECT_EQ(serial.first.avgPowerW, parallel.first.avgPowerW);
        EXPECT_EQ(serial.first.avgChannelLevel,
                  parallel.first.avgChannelLevel);
        EXPECT_EQ(serial.second, parallel.second);
    }
}

} // namespace

TEST(WideGeometryNetwork, Mesh4x4With13VcsLockstep)
{
    // 5 ports x 13 VCs = 65 dense input VCs: one past the single-word
    // boundary, so every InputVcSet operation exercises word 1.
    ExperimentSpec spec;
    spec.network.radix = 4;
    spec.network.router.numVcs = 13;
    spec.network.policy = PolicyKind::History;
    spec.workload.avgConcurrentTasks = 6.0;
    spec.workload.sourcesPerTask = 16;
    spec.workload.meanTaskDurationCycles = 1e5;
    spec.workload.seed = 0x51DE;
    spec.warmup = 2000;
    spec.measure = 6000;
    expectWideLockstep(spec, 0.2, 0x51DE, {2, 4});
}

TEST(WideGeometryNetwork, Torus3x3x3With12VcsLockstep)
{
    // 3-D torus: 7 ports x 12 VCs = 84 dense input VCs, wraparound
    // channels crossing partition boundaries both ways.
    ExperimentSpec spec;
    spec.network.radix = 3;
    spec.network.dims = 3;
    spec.network.torus = true;
    spec.network.router.numVcs = 12;
    spec.network.policy = PolicyKind::History;
    spec.workload.avgConcurrentTasks = 6.0;
    spec.workload.sourcesPerTask = 27;
    spec.workload.meanTaskDurationCycles = 1e5;
    spec.workload.seed = 0x7045;
    spec.warmup = 1500;
    spec.measure = 4500;
    expectWideLockstep(spec, 0.15, 0x7045, {3, 9});
}

TEST(WideGeometryLimits, ValidateNamesEachBound)
{
    using dvsnet::router::kMaxInputVcs;
    using dvsnet::router::kMaxPorts;
    using dvsnet::router::kMaxVcsPerPort;

    RouterConfig cfg;
    cfg.numPorts = kMaxPorts + 1;
    auto problems = cfg.validate();
    ASSERT_EQ(problems.size(), 1u);
    EXPECT_NE(problems[0].find("kMaxPorts"), std::string::npos)
        << problems[0];

    cfg = RouterConfig{};
    cfg.numVcs = kMaxVcsPerPort + 1;
    problems = cfg.validate();
    ASSERT_EQ(problems.size(), 1u);
    EXPECT_NE(problems[0].find("kMaxVcsPerPort"), std::string::npos)
        << problems[0];

    cfg = RouterConfig{};
    cfg.numPorts = 22;
    cfg.numVcs = 12;  // 264 > kMaxInputVcs, both factors in bounds
    problems = cfg.validate();
    ASSERT_EQ(problems.size(), 1u);
    EXPECT_NE(problems[0].find("kMaxInputVcs"), std::string::npos)
        << problems[0];

    // In-bounds wide geometry: valid, no problems.
    cfg = RouterConfig{};
    cfg.numPorts = 8;
    cfg.numVcs = 32;  // 256 == kMaxInputVcs exactly
    cfg.bufferPerPort = 128;
    EXPECT_TRUE(cfg.validate().empty());
}

TEST(WideGeometryLimits, RouterConstructorThrowsConfigError)
{
    class NeverRouting final : public dvsnet::router::RoutingAlgorithm
    {
        void
        route(dvsnet::NodeId, PortId, VcId, dvsnet::NodeId,
              std::vector<dvsnet::router::RouteCandidate> &out)
            const override
        {
            out.clear();
        }

        const char *name() const override { return "never"; }
    } routing;

    RouterConfig cfg;
    cfg.numVcs = dvsnet::router::kMaxVcsPerPort + 1;
    try {
        dvsnet::router::Router bad(0, cfg, routing);
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("kMaxVcsPerPort"),
                  std::string::npos)
            << e.what();
    }
}

TEST(WideGeometryLimits, NetworkValidateFoldsRouterBounds)
{
    dvsnet::network::NetworkConfig cfg;
    cfg.router.numVcs = dvsnet::router::kMaxVcsPerPort + 1;
    const auto problems = cfg.validate();
    ASSERT_FALSE(problems.empty());
    bool found = false;
    for (const auto &p : problems)
        found = found || p.find("kMaxVcsPerPort") != std::string::npos;
    EXPECT_TRUE(found);
}
