/**
 * @file
 * Tests for the minimal JSON writer/parser backing the run artifacts:
 * round-trip exactness, escaping, error positions, and the structural
 * properties (insertion order, type panics) other layers rely on.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "common/fatal.hpp"
#include "common/json.hpp"

using dvsnet::ConfigError;
using dvsnet::Json;

TEST(Json, ScalarsDump)
{
    EXPECT_EQ(Json().dump(), "null");
    EXPECT_EQ(Json(nullptr).dump(), "null");
    EXPECT_EQ(Json(true).dump(), "true");
    EXPECT_EQ(Json(false).dump(), "false");
    EXPECT_EQ(Json(0).dump(), "0");
    EXPECT_EQ(Json(std::int64_t{-42}).dump(), "-42");
    EXPECT_EQ(Json(std::uint64_t{7}).dump(), "7");
    EXPECT_EQ(Json("hi").dump(), "\"hi\"");
    EXPECT_EQ(Json(std::string("s")).dump(), "\"s\"");
}

TEST(Json, DoublesAlwaysLookLikeDoubles)
{
    // A double that happens to be integral must keep a marker (".0")
    // so round-tripping preserves its type.
    EXPECT_EQ(Json(1.0).dump(), "1.0");
    EXPECT_EQ(Json(-3.0).dump(), "-3.0");
    EXPECT_EQ(Json(0.5).dump(), "0.5");
    const Json back = Json::parse(Json(1.0).dump());
    EXPECT_EQ(back.type(), Json::Type::Double);
}

TEST(Json, DoubleRoundTripIsExact)
{
    for (double v : {0.1, 1.0 / 3.0, 6.02214076e23, 1e-300, -2.5e-17,
                     123456789.123456789}) {
        const Json parsed = Json::parse(Json(v).dump());
        EXPECT_EQ(parsed.asDouble(), v) << "value " << v;
    }
}

TEST(Json, NonFiniteDoublesSerializeAsNull)
{
    EXPECT_EQ(Json(std::numeric_limits<double>::quiet_NaN()).dump(),
              "null");
    EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump(),
              "null");
}

TEST(Json, StringEscaping)
{
    EXPECT_EQ(Json("a\"b").dump(), "\"a\\\"b\"");
    EXPECT_EQ(Json("a\\b").dump(), "\"a\\\\b\"");
    EXPECT_EQ(Json("a\nb\tc").dump(), "\"a\\nb\\tc\"");
    EXPECT_EQ(Json(std::string("\x01")).dump(), "\"\\u0001\"");
    // Full escape round-trip.
    const std::string nasty = "quote\" back\\ nl\n tab\t ctl\x02 end";
    EXPECT_EQ(Json::parse(Json(nasty).dump()).asString(), nasty);
}

TEST(Json, ObjectsPreserveInsertionOrder)
{
    Json j = Json::object();
    j["zebra"] = Json(1);
    j["alpha"] = Json(2);
    j["mid"] = Json(3);
    EXPECT_EQ(j.dump(), "{\"zebra\":1,\"alpha\":2,\"mid\":3}");
    ASSERT_EQ(j.items().size(), 3u);
    EXPECT_EQ(j.items()[0].first, "zebra");
    EXPECT_EQ(j.items()[2].first, "mid");
}

TEST(Json, OperatorBracketInsertsAndOverwrites)
{
    Json j;  // null converts to object on first subscript
    j["k"] = Json(1);
    EXPECT_TRUE(j.isObject());
    j["k"] = Json(2);
    EXPECT_EQ(j.find("k")->asInt(), 2);
    EXPECT_EQ(j.size(), 1u);
    EXPECT_EQ(j.find("missing"), nullptr);
}

TEST(Json, ArraysPushAndAt)
{
    Json a;  // null converts to array on first push
    a.push(Json(1));
    a.push(Json("two"));
    EXPECT_TRUE(a.isArray());
    ASSERT_EQ(a.size(), 2u);
    EXPECT_EQ(a.at(0).asInt(), 1);
    EXPECT_EQ(a.at(1).asString(), "two");
}

TEST(Json, PrettyPrint)
{
    Json j = Json::object();
    j["a"] = Json(1);
    Json arr = Json::array();
    arr.push(Json(2));
    j["b"] = std::move(arr);
    EXPECT_EQ(j.dump(2), "{\n  \"a\": 1,\n  \"b\": [\n    2\n  ]\n}");
    EXPECT_EQ(Json::object().dump(2), "{}");
    EXPECT_EQ(Json::array().dump(2), "[]");
}

TEST(Json, ParseScalars)
{
    EXPECT_TRUE(Json::parse("null").isNull());
    EXPECT_EQ(Json::parse("true").asBool(), true);
    EXPECT_EQ(Json::parse("-17").asInt(), -17);
    EXPECT_EQ(Json::parse("-17").type(), Json::Type::Int);
    EXPECT_EQ(Json::parse("2.5e3").asDouble(), 2500.0);
    EXPECT_EQ(Json::parse("  \"x\"  ").asString(), "x");
}

TEST(Json, ParseIntBeyondDoublePrecisionStaysExact)
{
    // 2^63 - 1 is not representable as a double; the parser must keep
    // it as an Int.
    const Json j = Json::parse("9223372036854775807");
    EXPECT_EQ(j.type(), Json::Type::Int);
    EXPECT_EQ(j.asInt(), std::numeric_limits<std::int64_t>::max());
}

TEST(Json, ParseNested)
{
    const Json j = Json::parse(
        R"({"results":[{"ok":true,"rate":0.5},{"ok":false}],"n":2})");
    ASSERT_TRUE(j.isObject());
    const Json *results = j.find("results");
    ASSERT_NE(results, nullptr);
    ASSERT_EQ(results->size(), 2u);
    EXPECT_TRUE(results->at(0).find("ok")->asBool());
    EXPECT_EQ(results->at(0).find("rate")->asDouble(), 0.5);
    EXPECT_EQ(j.find("n")->asInt(), 2);
}

TEST(Json, ParseUnicodeEscapes)
{
    // \u00e9 = é (2-byte UTF-8), \u20ac = € (3-byte UTF-8).
    EXPECT_EQ(Json::parse(R"("\u00e9")").asString(), "\xc3\xa9");
    EXPECT_EQ(Json::parse(R"("\u20ac")").asString(), "\xe2\x82\xac");
}

TEST(Json, ParseErrorsThrowConfigError)
{
    EXPECT_THROW(Json::parse(""), ConfigError);
    EXPECT_THROW(Json::parse("{"), ConfigError);
    EXPECT_THROW(Json::parse("[1,]"), ConfigError);
    EXPECT_THROW(Json::parse("{\"a\":1,}"), ConfigError);
    EXPECT_THROW(Json::parse("\"unterminated"), ConfigError);
    EXPECT_THROW(Json::parse("tru"), ConfigError);
    EXPECT_THROW(Json::parse("1 2"), ConfigError);   // trailing content
    EXPECT_THROW(Json::parse("{'a':1}"), ConfigError);
    EXPECT_THROW(Json::parse("\"\x01\""), ConfigError);  // raw control
}

TEST(Json, ParseDepthIsBounded)
{
    std::string deep(400, '[');
    deep += std::string(400, ']');
    EXPECT_THROW(Json::parse(deep), ConfigError);
}

TEST(Json, RoundTripComplexDocument)
{
    Json j = Json::object();
    j["schema"] = Json("dvsnet-bench-v1");
    j["seed"] = Json("18446744073709551615");  // uint64 max as string
    j["wall_seconds"] = Json(1.25);
    Json pts = Json::array();
    for (int i = 0; i < 3; ++i) {
        Json p = Json::object();
        p["rate"] = Json(0.2 * i);
        p["ok"] = Json(i != 1);
        pts.push(std::move(p));
    }
    j["points"] = std::move(pts);

    for (int indent : {-1, 0, 2, 4}) {
        const Json back = Json::parse(j.dump(indent));
        EXPECT_EQ(back.dump(), j.dump()) << "indent " << indent;
    }
}
