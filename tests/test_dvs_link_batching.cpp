/**
 * @file
 * Randomized equivalence test for the DVS channel's delivery batching.
 *
 * A reference model re-implements the channel's *per-flit* semantics
 * independently: departures, arrival ticks, credit stalling, the
 * transition state machine's timing, busy-tick accounting and the
 * utilization-window formula, all computed directly from the parameters
 * with no pending buffers or splice events.  Random operation sequences
 * (send bursts, credits, speed/slow steps, window checkpoints, stray
 * flushPending calls) are applied to both; every externally observable
 * quantity must match exactly:
 *
 *  - per-flit departure ticks returned by send();
 *  - the (arrival tick, payload) sequence each sink receives, in order;
 *  - canAccept() at every operation time;
 *  - takeUtilizationWindow() values, bit-for-bit;
 *  - flitsSent / transitions / disabledTime counters.
 *
 * Trials randomize the initial level, the voltage-transition latency
 * and the credit direct-push horizon (including 0 and effectively
 * infinite) — the batching policy knobs must never change semantics,
 * only when the inbox physically receives items.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <utility>
#include <vector>

#include "link/dvs_link.hpp"
#include "sim/kernel.hpp"

using dvsnet::Cycle;
using dvsnet::kRouterClockPeriod;
using dvsnet::kTickNever;
using dvsnet::Tick;
using dvsnet::VcId;
using dvsnet::link::DvsChannel;
using dvsnet::link::DvsLevelTable;
using dvsnet::link::DvsLinkParams;
using dvsnet::router::Flit;
using dvsnet::router::Inbox;
using dvsnet::sim::Kernel;

namespace
{

/**
 * Per-flit reference model of DvsChannel.  Transition phases are
 * tracked as explicit scheduled boundaries applied by advanceTo(), in
 * the order they were created (a speed-up's lock start precedes its
 * lock end precedes a ramp-down end), which mirrors the kernel-event
 * chain of the real channel exactly.
 */
struct RefChannel
{
    enum class St
    {
        Stable,
        VoltRampUp,
        FreqLock,
        VoltRampDown
    };

    const DvsLevelTable &table;
    Tick voltLat;
    Cycle freqCycles;
    Tick prop;

    St st = St::Stable;
    std::size_t level;
    std::size_t prevLevel;
    Tick period;
    Tick nextFree = 0;
    Tick disabledUntil = 0;

    Tick windowStart = 0;
    Tick busyTicks = 0;
    Tick disabledInWindow = 0;
    Tick disabledTime = 0;
    std::uint64_t flitsSent = 0;
    std::uint64_t transitions = 0;

    Tick lockStartAt = kTickNever;    ///< speed-up: voltage ramp end
    Tick lockEndAt = kTickNever;      ///< link functional again
    Tick rampDownEndAt = kTickNever;  ///< slow-down: voltage settled

    RefChannel(const DvsLevelTable &t, const DvsLinkParams &p)
        : table(t),
          voltLat(p.voltageTransitionLatency),
          freqCycles(p.freqTransitionLinkCycles),
          prop(p.propagationDelay),
          level(p.initialLevel),
          prevLevel(p.initialLevel),
          period(t.level(p.initialLevel).period)
    {}

    void
    advanceTo(Tick t)
    {
        if (lockStartAt != kTickNever && lockStartAt <= t) {
            const Tick at = lockStartAt;
            lockStartAt = kTickNever;
            beginLock(at);
        }
        if (lockEndAt != kTickNever && lockEndAt <= t) {
            const Tick at = lockEndAt;
            lockEndAt = kTickNever;
            if (level < prevLevel) {
                st = St::Stable;
                ++transitions;
            } else {
                st = St::VoltRampDown;
                rampDownEndAt = at + voltLat;
            }
        }
        if (rampDownEndAt != kTickNever && rampDownEndAt <= t) {
            rampDownEndAt = kTickNever;
            st = St::Stable;
            ++transitions;
        }
    }

    void
    beginLock(Tick now)
    {
        st = St::FreqLock;
        period = table.level(level).period;
        const Tick lockEnd =
            now + static_cast<Tick>(freqCycles) * period;
        disabledUntil = lockEnd;
        disabledTime += lockEnd - now;
        disabledInWindow += lockEnd - now;
        nextFree = std::max(nextFree, lockEnd);
        lockEndAt = lockEnd;
    }

    bool
    requestStep(bool faster, Tick now)
    {
        if (st != St::Stable || (faster && level == table.fastest()) ||
            (!faster && level == table.slowest()))
            return false;
        prevLevel = level;
        level = faster ? level - 1 : level + 1;
        if (faster) {
            // Voltage ramps first; the lock starts when it settles.
            st = St::VoltRampUp;
            lockStartAt = now + voltLat;
        } else {
            beginLock(now);
        }
        return true;
    }

    bool
    canAccept(Tick earliest) const
    {
        if (st == St::FreqLock)
            return false;
        return std::max(nextFree, earliest) <= earliest + period;
    }

    Tick
    send(Tick earliest, std::vector<Tick> &arrivals)
    {
        const Tick departure = std::max(nextFree, earliest);
        nextFree = departure + period;
        busyTicks += period;
        ++flitsSent;
        arrivals.push_back(departure + period + prop);
        return departure;
    }

    void
    sendCredit(VcId vc, Tick now,
               std::vector<std::pair<Tick, VcId>> &arrivals)
    {
        arrivals.emplace_back(std::max(now, disabledUntil) + period + prop,
                              vc);
    }

    double
    takeUtilizationWindow(Tick now)
    {
        const Tick span = now - windowStart;
        Tick disabled = disabledInWindow;
        if (disabledUntil > now)
            disabled -= disabledUntil - now;
        double util = 0.0;
        if (span > disabled) {
            util = static_cast<double>(busyTicks) /
                   static_cast<double>(span - disabled);
            util = std::min(util, 1.0);
        }
        windowStart = now;
        busyTicks = 0;
        disabledInWindow = disabledUntil > now ? disabledUntil - now : 0;
        return util;
    }
};

/** One randomized trial driving channel and reference in lockstep. */
void
runTrial(std::uint64_t seed, const DvsLinkParams &params, int numOps)
{
    SCOPED_TRACE(::testing::Message()
                 << "seed=" << seed << " initialLevel="
                 << params.initialLevel << " creditHorizon="
                 << params.creditDirectPushHorizon << " voltLat="
                 << params.voltageTransitionLatency);

    Kernel kernel;
    DvsLevelTable table = DvsLevelTable::standard10();
    Inbox<Flit> flitSink;
    Inbox<VcId> creditSink;
    DvsChannel channel(kernel, 0, table, params, nullptr);
    channel.connectFlitSink(&flitSink);
    channel.connectCreditSink(&creditSink);

    RefChannel ref(table, params);

    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<int> opDist(0, 99);
    std::uniform_int_distribution<Tick> gapDist(0, 20000);
    std::uniform_int_distribution<int> burstDist(1, 8);
    std::uniform_int_distribution<int> vcDist(0, 3);

    std::vector<Tick> refFlitArrivals;
    std::vector<std::uint64_t> refFlitIds;
    std::vector<std::pair<Tick, VcId>> refCreditArrivals;
    std::uint64_t nextFlitId = 1;

    Tick t = 0;
    for (int op = 0; op < numOps; ++op) {
        // Occasionally stay on the same tick to get same-time op mixes.
        if (opDist(rng) >= 10)
            t += gapDist(rng);
        kernel.run(t);
        ref.advanceTo(t);

        ASSERT_EQ(channel.currentPeriod(), ref.period);
        ASSERT_EQ(channel.canAccept(t), ref.canAccept(t));

        const int kind = opDist(rng);
        if (kind < 45) {
            // Burst of flits (skipped while the link is locking — the
            // router never sends into a disabled link).
            if (ref.st == RefChannel::St::FreqLock)
                continue;
            const int count = burstDist(rng);
            for (int i = 0; i < count; ++i) {
                Flit f;
                f.packet = nextFlitId;
                f.packetLen = 1;
                f.vc = 0;
                refFlitIds.push_back(nextFlitId);
                ++nextFlitId;
                const Tick dep = channel.send(f, t);
                const Tick refDep = ref.send(t, refFlitArrivals);
                ASSERT_EQ(dep, refDep);
            }
        } else if (kind < 75) {
            const VcId vc = vcDist(rng);
            channel.sendCredit(vc, t);
            ref.sendCredit(vc, t, refCreditArrivals);
        } else if (kind < 87) {
            const bool faster = (rng() & 1) != 0;
            const bool accepted = channel.requestStep(faster, t);
            ASSERT_EQ(accepted, ref.requestStep(faster, t));
        } else if (kind < 95) {
            const double got = channel.takeUtilizationWindow(t);
            const double want = ref.takeUtilizationWindow(t);
            ASSERT_EQ(got, want);  // same formula, bit-for-bit
        } else {
            // Early splice is always a semantic no-op.
            channel.flushPending();
        }
    }

    // Let every transition and splice event complete, then drain the
    // sinks against the reference arrival sequences.
    kernel.run();
    ref.advanceTo(kTickNever);  // apply the in-flight transition chain
    channel.flushPending();
    ASSERT_EQ(channel.pendingFlits(), 0u);
    ASSERT_EQ(channel.pendingCredits(), 0u);

    ASSERT_EQ(flitSink.size(), refFlitArrivals.size());
    for (std::size_t i = 0; i < refFlitArrivals.size(); ++i) {
        ASSERT_EQ(flitSink.nextArrival(), refFlitArrivals[i])
            << "flit " << i;
        const Flit got = flitSink.pop(refFlitArrivals[i]);
        ASSERT_EQ(got.packet, refFlitIds[i]) << "flit " << i;
    }
    EXPECT_TRUE(flitSink.empty());

    ASSERT_EQ(creditSink.size(), refCreditArrivals.size());
    for (std::size_t i = 0; i < refCreditArrivals.size(); ++i) {
        ASSERT_EQ(creditSink.nextArrival(), refCreditArrivals[i].first)
            << "credit " << i;
        const VcId got = creditSink.pop(refCreditArrivals[i].first);
        ASSERT_EQ(got, refCreditArrivals[i].second) << "credit " << i;
    }
    EXPECT_TRUE(creditSink.empty());

    EXPECT_EQ(channel.flitsSent(), ref.flitsSent);
    EXPECT_EQ(channel.transitions(), ref.transitions);
    EXPECT_EQ(channel.disabledTime(), ref.disabledTime);
}

} // namespace

TEST(DvsLinkBatching, MatchesPerFlitReferenceAcrossRandomTrials)
{
    // Short voltage ramps pack many full transitions (and the lock
    // windows between them) into each trial.
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        DvsLinkParams p;
        p.voltageTransitionLatency = dvsnet::secondsToTicks(1e-6);
        p.initialLevel = static_cast<std::size_t>(seed % 10);
        runTrial(seed, p, 400);
    }
}

TEST(DvsLinkBatching, MatchesReferenceWithDefaultTransitionLatency)
{
    for (std::uint64_t seed = 100; seed < 103; ++seed) {
        DvsLinkParams p;
        p.initialLevel = 9;  // slow start: long serialization, big leads
        runTrial(seed, p, 300);
    }
}

TEST(DvsLinkBatching, PushPolicyKnobDoesNotChangeSemantics)
{
    // Horizon 0 forces every empty-sink credit through the batch/event
    // path; a huge horizon forces them all through the direct push.
    const Tick horizons[] = {0, 4 * kRouterClockPeriod,
                             Tick{1} << 40};
    for (const Tick h : horizons) {
        for (std::uint64_t seed = 200; seed < 204; ++seed) {
            DvsLinkParams p;
            p.voltageTransitionLatency = dvsnet::secondsToTicks(1e-6);
            p.creditDirectPushHorizon = h;
            p.initialLevel = 5;
            runTrial(seed, p, 300);
        }
    }
}
