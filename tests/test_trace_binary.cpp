/**
 * @file
 * Binary (.dvst) trace format tests: round trips against the in-memory
 * and CSV representations (including a randomized property test),
 * header/format-violation rejection, and lockstep equivalence of the
 * streaming BinaryTraceReplay generator with the CSV replay path.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/fatal.hpp"
#include "common/rng.hpp"
#include "sim/kernel.hpp"
#include "traffic/trace.hpp"
#include "workload/trace_binary.hpp"

using dvsnet::ConfigError;
using dvsnet::NodeId;
using dvsnet::Rng;
using dvsnet::Tick;
using dvsnet::sim::Kernel;
using dvsnet::traffic::Trace;
using dvsnet::traffic::TraceEntry;
using dvsnet::traffic::TraceTraffic;
using dvsnet::workload::BinaryTraceReader;
using dvsnet::workload::BinaryTraceReplay;
using dvsnet::workload::BinaryTraceWriter;
using dvsnet::workload::loadAnyTrace;
using dvsnet::workload::loadBinaryTrace;
using dvsnet::workload::saveBinaryTrace;

namespace
{

std::string
tempPath(const char *name)
{
    return ::testing::TempDir() + "/" + name;
}

/** Serialize a trace to an in-memory binary stream. */
std::string
toBinary(const Trace &trace, std::uint32_t numNodes = 0)
{
    std::ostringstream out(std::ios::binary);
    BinaryTraceWriter writer(out, numNodes);
    for (const auto &entry : trace.entries())
        writer.append(entry);
    writer.finish();
    return out.str();
}

/** Deserialize an in-memory binary stream back to a trace. */
Trace
fromBinary(const std::string &bytes)
{
    std::istringstream in(bytes, std::ios::binary);
    BinaryTraceReader reader(in);
    Trace trace;
    TraceEntry entry;
    while (reader.next(entry)) {
        trace.append(entry.when, entry.src, entry.dst, entry.sizeFlits,
                     entry.trafficClass);
    }
    return trace;
}

} // namespace

TEST(BinaryTrace, RoundTripBasic)
{
    Trace t;
    t.append(0, 0, 63);
    t.append(12345, 7, 8, 5, 1);
    t.append(12345, 8, 7);            // equal ticks allowed
    t.append(99999999999ull, 63, 0);  // large tick delta
    EXPECT_EQ(fromBinary(toBinary(t)).entries(), t.entries());
}

TEST(BinaryTrace, RoundTripEmpty)
{
    const std::string bytes = toBinary(Trace{});
    EXPECT_EQ(fromBinary(bytes).size(), 0u);
}

TEST(BinaryTrace, RandomTracesRoundTripAndMatchCsvPath)
{
    Rng rng(20260808);
    for (int round = 0; round < 20; ++round) {
        Trace t;
        Tick when = rng.uniformInt(1000);
        const std::size_t entries = 1 + rng.uniformInt(200);
        for (std::size_t k = 0; k < entries; ++k) {
            when += rng.uniformInt(5000);  // non-decreasing, often equal
            t.append(when, static_cast<NodeId>(rng.uniformInt(64)),
                     static_cast<NodeId>(rng.uniformInt(64)),
                     static_cast<std::uint16_t>(rng.uniformInt(32)),
                     static_cast<std::uint8_t>(rng.uniformInt(4)));
        }
        // Binary round trip == original == CSV round trip.
        EXPECT_EQ(fromBinary(toBinary(t)).entries(), t.entries());
        EXPECT_EQ(Trace::fromCsv(t.toCsv()).entries(), t.entries());
    }
}

TEST(BinaryTrace, HeaderCarriesNodeCountAndEntryCount)
{
    Trace t;
    t.append(100, 1, 2);
    t.append(200, 3, 0);
    const std::string bytes = toBinary(t, 16);

    std::istringstream in(bytes, std::ios::binary);
    BinaryTraceReader reader(in);
    EXPECT_EQ(reader.header().version, 1u);
    EXPECT_EQ(reader.header().numNodes, 16u);
    EXPECT_EQ(reader.header().entryCount, 2u);  // backpatched
}

TEST(BinaryTrace, WriterRejectsDecreasingTicks)
{
    std::ostringstream out(std::ios::binary);
    BinaryTraceWriter writer(out);
    writer.append({100, 1, 2});
    EXPECT_THROW(writer.append({50, 1, 2}), ConfigError);
}

TEST(BinaryTrace, RejectsBadMagic)
{
    std::istringstream in("this is not a dvst file at all....",
                          std::ios::binary);
    EXPECT_THROW(BinaryTraceReader reader(in), ConfigError);
}

TEST(BinaryTrace, RejectsUnsupportedVersion)
{
    Trace t;
    t.append(1, 0, 1);
    std::string bytes = toBinary(t);
    bytes[4] = 99;  // version field, little-endian low byte
    std::istringstream in(bytes, std::ios::binary);
    EXPECT_THROW(BinaryTraceReader reader(in), ConfigError);
}

TEST(BinaryTrace, RejectsTruncatedFile)
{
    Trace t;
    t.append(1000, 3, 4, 7, 2);
    t.append(2000, 4, 3, 7, 2);
    const std::string bytes = toBinary(t);
    // Chop mid-entry: header survives, next() must report truncation.
    std::istringstream in(bytes.substr(0, bytes.size() - 2),
                          std::ios::binary);
    BinaryTraceReader reader(in);
    TraceEntry entry;
    EXPECT_THROW({
        while (reader.next(entry)) {
        }
    }, ConfigError);
}

TEST(BinaryTrace, RejectsOutOfRangeNodeIdAgainstHeader)
{
    Trace t;
    t.append(10, 9, 1);  // src 9 out of range for a 4-node header
    const std::string bytes = toBinary(t, 4);
    std::istringstream in(bytes, std::ios::binary);
    BinaryTraceReader reader(in);
    TraceEntry entry;
    EXPECT_THROW(reader.next(entry), ConfigError);
}

TEST(BinaryTrace, FileRoundTripAndExtensionDispatch)
{
    Trace t;
    t.append(500, 2, 3, 9, 1);
    t.append(700, 3, 2);
    const std::string path = tempPath("dvsnet_trace_test.dvst");
    saveBinaryTrace(t, path, 16);
    EXPECT_EQ(loadBinaryTrace(path).entries(), t.entries());
    // loadAnyTrace dispatches on the extension.
    EXPECT_EQ(loadAnyTrace(path).entries(), t.entries());
    std::remove(path.c_str());
}

TEST(BinaryTraceReplay, LockstepMatchesCsvReplay)
{
    // A trace exercising equal ticks, size/class mix, and bursts.
    Trace t;
    Rng rng(7);
    Tick when = 0;
    for (int k = 0; k < 300; ++k) {
        when += rng.uniformInt(3) * 500;
        t.append(when, static_cast<NodeId>(rng.uniformInt(16)),
                 static_cast<NodeId>(rng.uniformInt(16)),
                 static_cast<std::uint16_t>(1 + rng.uniformInt(8)),
                 static_cast<std::uint8_t>(rng.uniformInt(2)));
    }
    const std::string path = tempPath("dvsnet_replay_test.dvst");
    saveBinaryTrace(t, path, 16);

    // Capture both replays as full (tick, request) streams.
    using Event = std::pair<Tick, dvsnet::traffic::PacketRequest>;
    const auto capture = [](dvsnet::traffic::TrafficGenerator &gen) {
        std::vector<Event> events;
        Kernel kernel;
        gen.start(kernel,
                  [&](const dvsnet::traffic::PacketRequest &request) {
                      events.emplace_back(kernel.now(), request);
                  });
        kernel.run();
        return events;
    };

    TraceTraffic csvReplay(Trace::fromCsv(t.toCsv()));
    BinaryTraceReplay binaryReplay(path);
    const auto fromCsvPath = capture(csvReplay);
    const auto fromBinaryPath = capture(binaryReplay);
    std::remove(path.c_str());

    ASSERT_EQ(fromCsvPath.size(), t.size());
    EXPECT_EQ(fromCsvPath, fromBinaryPath);
    for (std::size_t k = 0; k < fromCsvPath.size(); ++k) {
        EXPECT_EQ(fromCsvPath[k].first, t.entries()[k].when);
        EXPECT_EQ(fromCsvPath[k].second, t.entries()[k].toRequest());
    }
}

TEST(BinaryTraceReplay, MissingFileThrows)
{
    EXPECT_THROW(BinaryTraceReplay replay("/nonexistent/nope.dvst"),
                 ConfigError);
}
