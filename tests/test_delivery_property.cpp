/**
 * @file
 * Randomized delivery properties: across seeds, loads, policies and
 * packet lengths, every packet injected into a bounded-load network is
 * delivered intact (no loss, duplication, or reorder — enforced inside
 * MetricsCollector) and latency never falls below the physical minimum.
 */

#include <gtest/gtest.h>

#include "network/network.hpp"
#include "traffic/pattern_traffic.hpp"

using dvsnet::Cycle;
using dvsnet::network::Network;
using dvsnet::network::NetworkConfig;
using dvsnet::network::PolicyKind;
using dvsnet::network::RunResults;
using dvsnet::traffic::Pattern;
using dvsnet::traffic::PatternTraffic;

namespace
{

struct DeliveryCase
{
    std::uint64_t seed;
    double rate;
    PolicyKind policy;
    std::uint16_t packetLength;
};

class DeliveryProperty : public ::testing::TestWithParam<DeliveryCase>
{};

} // namespace

TEST_P(DeliveryProperty, EveryPacketArrivesIntact)
{
    const auto &param = GetParam();
    NetworkConfig cfg;
    cfg.radix = 4;
    cfg.policy = param.policy;
    cfg.packetLength = param.packetLength;

    Network net(cfg);
    PatternTraffic traffic(net.topology(), Pattern::UniformRandom,
                           param.rate, param.seed);
    net.attachTraffic(traffic);
    const RunResults res = net.run(3000, 25000);

    ASSERT_GT(res.packetsCreated, 100u);
    // Everything created in the window is delivered, modulo the tail
    // still in flight at the horizon.
    EXPECT_GE(res.packetsDelivered + 30, res.packetsCreated);

    // Physical floor: source router pipeline (13) + ejection; nothing
    // can beat it.
    EXPECT_GE(res.avgLatencyCycles, 13.0);

    // Flit conservation: ejected flits = delivered packets * length
    // plus partially ejected packets' flits; at least len * delivered.
    EXPECT_GE(res.flitsEjected,
              res.packetsDelivered * param.packetLength);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsLoadsPoliciesLengths, DeliveryProperty,
    ::testing::Values(
        DeliveryCase{101, 0.01, PolicyKind::None, 5},
        DeliveryCase{202, 0.02, PolicyKind::None, 1},
        DeliveryCase{303, 0.01, PolicyKind::History, 5},
        DeliveryCase{404, 0.02, PolicyKind::History, 9},
        DeliveryCase{505, 0.03, PolicyKind::History, 2},
        DeliveryCase{606, 0.01, PolicyKind::DynamicThreshold, 5},
        DeliveryCase{707, 0.02, PolicyKind::StaticLevel, 5},
        DeliveryCase{808, 0.015, PolicyKind::LinkUtilOnly, 5}));
