/**
 * @file
 * Virtual-channel buffer tests: FIFO order, capacity accounting,
 * per-port partitioning; plus inbox timestamp semantics.  (The VC
 * allocation state machine lives in the Router's SoA slabs and is
 * exercised by test_router.cpp / test_wide_geometry.cpp.)
 */

#include <gtest/gtest.h>

#include "router/buffer.hpp"
#include "router/inbox.hpp"

using dvsnet::Tick;
using dvsnet::router::Flit;
using dvsnet::router::Inbox;
using dvsnet::router::InputBuffer;
using dvsnet::router::VirtualChannel;

namespace
{

Flit
makeFlit(std::uint16_t seq, std::uint16_t len = 5)
{
    Flit f;
    f.packet = 1;
    f.seq = seq;
    f.packetLen = len;
    f.vc = 0;
    return f;
}

} // namespace

TEST(VirtualChannel, StartsIdleAndEmpty)
{
    VirtualChannel vc(8);
    EXPECT_TRUE(vc.empty());
    EXPECT_FALSE(vc.full());
    EXPECT_EQ(vc.freeSlots(), 8u);
    EXPECT_EQ(vc.capacity(), 8u);
}

TEST(VirtualChannel, FifoOrder)
{
    VirtualChannel vc(8);
    for (std::uint16_t i = 0; i < 5; ++i)
        vc.enqueue(makeFlit(i));
    for (std::uint16_t i = 0; i < 5; ++i) {
        EXPECT_EQ(vc.front().seq, i);
        EXPECT_EQ(vc.dequeue().seq, i);
    }
    EXPECT_TRUE(vc.empty());
}

TEST(VirtualChannel, OccupancyTracksOperations)
{
    VirtualChannel vc(4);
    vc.enqueue(makeFlit(0));
    vc.enqueue(makeFlit(1));
    EXPECT_EQ(vc.occupancy(), 2u);
    EXPECT_EQ(vc.freeSlots(), 2u);
    vc.dequeue();
    EXPECT_EQ(vc.occupancy(), 1u);
}

TEST(VirtualChannel, FullAtCapacity)
{
    VirtualChannel vc(2);
    vc.enqueue(makeFlit(0));
    vc.enqueue(makeFlit(1));
    EXPECT_TRUE(vc.full());
    EXPECT_EQ(vc.freeSlots(), 0u);
}

TEST(VirtualChannelDeathTest, OverflowPanics)
{
    VirtualChannel vc(1);
    vc.enqueue(makeFlit(0));
    EXPECT_DEATH(vc.enqueue(makeFlit(1)), "full VC");
}

TEST(VirtualChannelDeathTest, UnderflowPanics)
{
    VirtualChannel vc(1);
    EXPECT_DEATH(vc.dequeue(), "empty VC");
}

TEST(InputBuffer, SplitsCapacityEvenly)
{
    InputBuffer buf(2, 128);
    EXPECT_EQ(buf.numVcs(), 2);
    EXPECT_EQ(buf.vc(0).capacity(), 64u);
    EXPECT_EQ(buf.vc(1).capacity(), 64u);
    EXPECT_EQ(buf.totalCapacity(), 128u);
}

TEST(InputBuffer, TotalOccupancySumsVcs)
{
    InputBuffer buf(2, 8);
    buf.vc(0).enqueue(makeFlit(0));
    buf.vc(1).enqueue(makeFlit(0));
    buf.vc(1).enqueue(makeFlit(1));
    EXPECT_EQ(buf.totalOccupancy(), 3u);
}

TEST(InputBuffer, OddCapacityFloors)
{
    InputBuffer buf(3, 10);
    EXPECT_EQ(buf.vc(0).capacity(), 3u);
    EXPECT_EQ(buf.totalCapacity(), 9u);
}

TEST(Inbox, ReadyRespectsTimestamps)
{
    Inbox<int> box;
    box.push(100, 7);
    EXPECT_FALSE(box.ready(99));
    EXPECT_TRUE(box.ready(100));
    EXPECT_TRUE(box.ready(200));
}

TEST(Inbox, PopsInOrder)
{
    Inbox<int> box;
    box.push(10, 1);
    box.push(20, 2);
    box.push(20, 3);
    EXPECT_EQ(box.pop(50), 1);
    EXPECT_EQ(box.pop(50), 2);
    EXPECT_EQ(box.pop(50), 3);
    EXPECT_TRUE(box.empty());
}

TEST(Inbox, NextArrival)
{
    Inbox<int> box;
    EXPECT_EQ(box.nextArrival(), dvsnet::kTickNever);
    box.push(42, 1);
    EXPECT_EQ(box.nextArrival(), Tick{42});
}

TEST(InboxDeathTest, NonMonotonePushPanics)
{
    Inbox<int> box;
    box.push(100, 1);
    EXPECT_DEATH(box.push(50, 2), "monotone");
}

TEST(InboxDeathTest, PrematurePopPanics)
{
    Inbox<int> box;
    box.push(100, 1);
    EXPECT_DEATH(box.pop(50), "nothing ready");
}
