/**
 * @file
 * DVS channel tests: the Section 2 transition protocol (voltage-first on
 * speed-up, frequency-first on slow-down, disabled during frequency
 * locks), serialization timing, credit sideband timing, transition
 * energy, and the LU window counter.
 */

#include <gtest/gtest.h>

#include "link/dvs_link.hpp"
#include "power/energy_ledger.hpp"
#include "sim/kernel.hpp"

using dvsnet::Tick;
using dvsnet::VcId;
using dvsnet::cyclesToTicks;
using dvsnet::kRouterClockPeriod;
using dvsnet::secondsToTicks;
using dvsnet::link::DvsChannel;
using dvsnet::link::DvsLevelTable;
using dvsnet::link::DvsLinkParams;
using dvsnet::power::EnergyLedger;
using dvsnet::router::Flit;
using dvsnet::router::Inbox;
using dvsnet::sim::Kernel;

namespace
{

struct Harness
{
    Kernel kernel;
    DvsLevelTable table = DvsLevelTable::standard10();
    Inbox<Flit> flitSink;
    Inbox<VcId> creditSink;
    EnergyLedger ledger{1, 1.6};
    DvsChannel channel;

    explicit Harness(DvsLinkParams params = {})
        : channel(kernel, 0, table, params, &ledger)
    {
        channel.connectFlitSink(&flitSink);
        channel.connectCreditSink(&creditSink);
    }
};

Flit
someFlit()
{
    Flit f;
    f.packet = 1;
    f.packetLen = 1;
    f.vc = 0;
    return f;
}

} // namespace

TEST(DvsChannel, StartsStableAtInitialLevel)
{
    Harness h;
    EXPECT_TRUE(h.channel.stable());
    EXPECT_EQ(h.channel.level(), 0u);
    EXPECT_EQ(h.channel.currentPeriod(), Tick{1000});
    EXPECT_DOUBLE_EQ(h.channel.currentVoltage(), 2.5);
}

TEST(DvsChannel, InitialLevelParameterRespected)
{
    DvsLinkParams p;
    p.initialLevel = 9;
    Harness h(p);
    EXPECT_EQ(h.channel.level(), 9u);
    EXPECT_EQ(h.channel.currentPeriod(), Tick{8000});
}

TEST(DvsChannel, SendDeliversAfterSerializationAndPropagation)
{
    Harness h;
    const Tick dep = h.channel.send(someFlit(), 5000);
    EXPECT_EQ(dep, Tick{5000});
    h.channel.flushPending();  // peek past the delivery batch
    EXPECT_EQ(h.flitSink.nextArrival(), Tick{5000 + 2 * 1000});
}

TEST(DvsChannel, BackToBackSendsSpacedByPeriod)
{
    Harness h;
    EXPECT_EQ(h.channel.send(someFlit(), 1000), Tick{1000});
    EXPECT_EQ(h.channel.send(someFlit(), 1000), Tick{2000});
    EXPECT_EQ(h.channel.send(someFlit(), 1500), Tick{3000});
}

TEST(DvsChannel, CanAcceptReflectsBacklog)
{
    Harness h;
    EXPECT_TRUE(h.channel.canAccept(0));
    h.channel.send(someFlit(), 0);      // busy until 1000
    EXPECT_TRUE(h.channel.canAccept(0));  // next would start at 1000 <= 0+1000
    h.channel.send(someFlit(), 0);      // busy until 2000
    EXPECT_FALSE(h.channel.canAccept(0));
    EXPECT_TRUE(h.channel.canAccept(1000));
}

TEST(DvsChannel, BatchedDeliveriesSpliceViaKernelEvent)
{
    Harness h;
    h.channel.send(someFlit(), 0);
    h.channel.send(someFlit(), 0);
    // Both deliveries sit in the channel until the splice event fires
    // at the first pending arrival (0 + serialization + wire = 2000).
    EXPECT_EQ(h.channel.pendingFlits(), 2u);
    EXPECT_TRUE(h.flitSink.empty());
    h.kernel.run(2000);
    EXPECT_EQ(h.channel.pendingFlits(), 0u);
    EXPECT_EQ(h.flitSink.size(), 2u);
    EXPECT_EQ(h.flitSink.nextArrival(), Tick{2000});
}

TEST(DvsChannel, BurstSplitsOnGapAndLevelChange)
{
    Harness h;
    h.channel.send(someFlit(), 0);  // starts burst 1
    h.channel.send(someFlit(), 0);  // back-to-back: same burst
    EXPECT_EQ(h.channel.flitBursts(), 1u);
    h.channel.send(someFlit(), 5000);  // serialization gap: burst 2
    EXPECT_EQ(h.channel.flitBursts(), 2u);

    // A requestStep changes period_ mid-flight; the next send must
    // open a new burst even though the channel never went idle.
    ASSERT_TRUE(h.channel.requestStep(false, 6000));
    const Tick lockEnd = 6000 + 100 * h.table.level(1).period;
    h.kernel.run(lockEnd);  // functional again (voltage still ramping)
    h.channel.send(someFlit(), lockEnd);
    EXPECT_EQ(h.channel.flitBursts(), 3u);
}

TEST(DvsChannel, FlushPendingIsIdempotentAndKeepsArrivals)
{
    Harness h;
    h.channel.send(someFlit(), 0);
    h.channel.sendCredit(1, 0);
    h.channel.flushPending();
    EXPECT_EQ(h.channel.pendingFlits(), 0u);
    EXPECT_EQ(h.channel.pendingCredits(), 0u);
    EXPECT_EQ(h.flitSink.nextArrival(), Tick{2000});
    EXPECT_EQ(h.creditSink.nextArrival(), Tick{2000});
    h.channel.flushPending();  // no-op
    EXPECT_EQ(h.flitSink.size(), 1u);
    EXPECT_EQ(h.creditSink.size(), 1u);
}

TEST(DvsChannel, SlowLevelStretchesSerialization)
{
    DvsLinkParams p;
    p.initialLevel = 9;  // 125 MHz, period 8000
    Harness h(p);
    const Tick dep = h.channel.send(someFlit(), 0);
    EXPECT_EQ(dep, Tick{0});
    h.channel.flushPending();
    // 8000 serialization + 1000 fixed wire flight.
    EXPECT_EQ(h.flitSink.nextArrival(), Tick{9000});
    EXPECT_EQ(h.channel.send(someFlit(), 0), Tick{8000});
}

TEST(DvsChannel, CreditTakesOneLinkCycle)
{
    Harness h;
    h.channel.sendCredit(0, 500);
    h.channel.flushPending();
    EXPECT_EQ(h.creditSink.nextArrival(), Tick{2500});  // cycle + wire
}

TEST(DvsChannel, SlowDownSequencesFrequencyThenVoltage)
{
    DvsLinkParams p;
    Harness h(p);
    ASSERT_TRUE(h.channel.requestStep(/*faster=*/false, 0));
    // Frequency lock starts immediately: disabled, new (slower) period.
    EXPECT_EQ(h.channel.state(), DvsChannel::State::FreqLock);
    EXPECT_FALSE(h.channel.canAccept(0));
    EXPECT_EQ(h.channel.level(), 1u);

    const Tick lockEnd = 100 * h.table.level(1).period;
    h.kernel.run(lockEnd);
    EXPECT_EQ(h.channel.state(), DvsChannel::State::VoltRampDown);
    EXPECT_TRUE(h.channel.canAccept(h.kernel.now()));  // functional in ramp
    // Voltage still reads as the old level until the ramp settles.
    EXPECT_DOUBLE_EQ(h.channel.currentVoltage(), h.table.level(0).voltage);

    h.kernel.run(lockEnd + secondsToTicks(10e-6));
    EXPECT_TRUE(h.channel.stable());
    EXPECT_DOUBLE_EQ(h.channel.currentVoltage(), h.table.level(1).voltage);
    EXPECT_EQ(h.channel.transitions(), 1u);
}

TEST(DvsChannel, SpeedUpSequencesVoltageThenFrequency)
{
    DvsLinkParams p;
    p.initialLevel = 5;
    Harness h(p);
    const Tick oldPeriod = h.table.level(5).period;
    ASSERT_TRUE(h.channel.requestStep(/*faster=*/true, 0));
    // Voltage ramp first: functional at the old frequency.
    EXPECT_EQ(h.channel.state(), DvsChannel::State::VoltRampUp);
    EXPECT_TRUE(h.channel.canAccept(0));
    EXPECT_EQ(h.channel.currentPeriod(), oldPeriod);
    EXPECT_EQ(h.channel.level(), 4u);

    h.kernel.run(secondsToTicks(10e-6));
    EXPECT_EQ(h.channel.state(), DvsChannel::State::FreqLock);
    EXPECT_FALSE(h.channel.canAccept(h.kernel.now()));
    EXPECT_EQ(h.channel.currentPeriod(), h.table.level(4).period);

    h.kernel.run(secondsToTicks(10e-6) + 100 * h.table.level(4).period);
    EXPECT_TRUE(h.channel.stable());
    EXPECT_EQ(h.channel.level(), 4u);
    EXPECT_EQ(h.channel.transitions(), 1u);
}

TEST(DvsChannel, RequestRejectedWhileTransitioning)
{
    Harness h;
    ASSERT_TRUE(h.channel.requestStep(false, 0));
    EXPECT_FALSE(h.channel.requestStep(false, 0));
    EXPECT_FALSE(h.channel.requestStep(true, 0));
}

TEST(DvsChannel, RequestRejectedAtBoundaries)
{
    Harness fast;  // level 0
    EXPECT_FALSE(fast.channel.requestStep(true, 0));

    DvsLinkParams p;
    p.initialLevel = 9;
    Harness slow(p);
    EXPECT_FALSE(slow.channel.requestStep(false, 0));
}

TEST(DvsChannel, SendsBlockedDuringLockResumeAfter)
{
    Harness h;
    h.channel.requestStep(false, 0);
    const Tick lockEnd = 100 * h.table.level(1).period;
    h.kernel.run(lockEnd / 2);
    EXPECT_FALSE(h.channel.canAccept(h.kernel.now()));
    h.kernel.run(lockEnd);
    EXPECT_TRUE(h.channel.canAccept(h.kernel.now()));
    const Tick dep = h.channel.send(someFlit(), h.kernel.now());
    EXPECT_GE(dep, lockEnd);
}

TEST(DvsChannel, CreditsStallDuringLock)
{
    Harness h;
    h.channel.requestStep(false, 0);  // lock [0, 100 * period(1))
    const Tick lockEnd = 100 * h.table.level(1).period;
    h.channel.sendCredit(0, 10);
    h.channel.flushPending();
    EXPECT_EQ(h.creditSink.nextArrival(),
              lockEnd + h.table.level(1).period + kRouterClockPeriod);
}

TEST(DvsChannel, TransitionEnergyMatchesStratakos)
{
    Harness h;
    h.channel.requestStep(false, 0);
    const double v1 = h.table.level(0).voltage;
    const double v2 = h.table.level(1).voltage;
    const double expected = 0.1 * 5e-6 * (v1 * v1 - v2 * v2);
    EXPECT_NEAR(h.ledger.totalTransitionEnergy(), expected, 1e-12);
}

TEST(DvsChannel, FreqLockDurationUsesNewPeriod)
{
    DvsLinkParams p;
    p.freqTransitionLinkCycles = 10;
    Harness h(p);
    h.channel.requestStep(false, 0);
    h.kernel.run(10 * h.table.level(1).period);
    EXPECT_EQ(h.channel.state(), DvsChannel::State::VoltRampDown);
    EXPECT_EQ(h.channel.disabledTime(),
              Tick{10} * h.table.level(1).period);
}

TEST(DvsChannel, UtilizationWindowCountsBusyFraction)
{
    Harness h;
    // 3 flits of 1000 ticks each in a 10000-tick window.
    h.channel.send(someFlit(), 0);
    h.channel.send(someFlit(), 3000);
    h.channel.send(someFlit(), 7000);
    EXPECT_NEAR(h.channel.takeUtilizationWindow(10000), 0.3, 1e-9);
    // Window resets.
    EXPECT_NEAR(h.channel.takeUtilizationWindow(20000), 0.0, 1e-9);
}

TEST(DvsChannel, UtilizationSaturatesAtOne)
{
    Harness h;
    for (int i = 0; i < 12; ++i)
        h.channel.send(someFlit(), 0);
    EXPECT_DOUBLE_EQ(h.channel.takeUtilizationWindow(10000), 1.0);
}

TEST(DvsChannel, LedgerSeesStableLevelPower)
{
    Harness h;
    // 8 links at 200 mW.
    EXPECT_NEAR(h.ledger.channelPowerNow(0), 1.6, 1e-12);
    h.channel.requestStep(false, 0);
    h.kernel.run(secondsToTicks(20e-6));
    ASSERT_TRUE(h.channel.stable());
    EXPECT_NEAR(h.ledger.channelPowerNow(0),
                8.0 * h.table.level(1).powerW, 1e-9);
}

TEST(DvsChannel, FullDescentReachesSlowestLevel)
{
    Harness h;
    for (int step = 0; step < 9; ++step) {
        ASSERT_TRUE(h.channel.requestStep(false, h.kernel.now()));
        h.kernel.run(h.kernel.now() + secondsToTicks(10e-6) +
                     100 * 8000 + 1000);
        ASSERT_TRUE(h.channel.stable()) << "step " << step;
    }
    EXPECT_EQ(h.channel.level(), 9u);
    EXPECT_EQ(h.channel.transitions(), 9u);
    EXPECT_NEAR(h.ledger.channelPowerNow(0), 8.0 * 0.0236, 1e-9);
}
