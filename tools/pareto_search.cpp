/**
 * @file
 * Resumable Pareto-frontier search CLI over the DVS policy space.
 *
 *   pareto_search [search=NAME[:key=val,...]] [rate=R] [--seed S]
 *                 [journal=FILE] [resume=FILE] [cache=FILE[,FILE...]]
 *                 [--quick] [--json FILE] [--threads N] ...
 *
 * The `search=` spec mirrors the workload/link-power factory grammar
 * (only "successive-halving" is registered; keys: budget, candidates,
 * rungs, slack, step).  `journal=` writes the evaluation journal as it
 * goes; `resume=` warm-loads a (possibly torn) journal from a killed
 * run and rewrites it in place — the final front and journal are
 * byte-identical to an uninterrupted run at the same seed.  `cache=`
 * warm-loads extra journals without rewriting them (shard merge).
 *
 * All the usual bench flags apply (`--quick`, `--json` for the
 * dvsnet-bench-v1 artifact, `--workload`, fidelity overrides); unknown
 * search strategies and keys exit with the registry's vocabulary.
 */

#include <cstdio>

#include "bench_util.hpp"
#include "search_cli.hpp"

using namespace dvsnet;

int
main(int argc, char **argv)
{
    const auto opts = bench::parseOptions(argc, argv);
    bench::printHeader(
        "Pareto search",
        "resumable multi-objective DVS policy search", opts);

    auto config = bench::searchConfigFromOptions(opts);
    const std::string spec = bench::searchSpecString(opts);
    std::printf("search spec: %s\n", spec.c_str());
    if (!config.journalPath.empty())
        std::printf("journal: %s\n", config.journalPath.c_str());
    for (const auto &warm : config.warmJournals)
        std::printf("warm cache: %s\n", warm.c_str());

    CounterRegistry registry;
    search::SearchDriver driver(config, &registry);
    const auto outcome = driver.run();

    std::printf("\ncandidates: %zu   network evals: %llu (%llu full "
                "fidelity)   cache hits: %llu   culled: %llu\n",
                outcome.candidates.size(),
                static_cast<unsigned long long>(outcome.networkEvals),
                static_cast<unsigned long long>(outcome.networkEvalsFull),
                static_cast<unsigned long long>(outcome.cacheHits),
                static_cast<unsigned long long>(outcome.culled));
    if (!outcome.completed)
        std::printf("budget exhausted before the last rung — resume "
                    "with resume=%s and a larger budget to finish\n",
                    config.journalPath.empty() ? "JOURNAL"
                                               : config.journalPath.c_str());

    std::printf("\nPareto front (%zu points):\n", outcome.front.size());
    bench::printTable(bench::frontTable(outcome.front), opts);

    bench::recordResult(bench::searchResultJson(outcome, spec));
    bench::finishReport(opts);
    return 0;
}
