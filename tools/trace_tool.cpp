/**
 * @file
 * Packet-trace utility: record a workload into a trace file, convert
 * between the CSV and binary (.dvst) formats, and inspect a trace.
 *
 *   trace_tool record out=FILE [workload=SPEC] [radix=N] [torus=0|1]
 *              [cycles=N] [rate=R] [seed=S]
 *       Run the named workload (any workload::WorkloadFactory spec;
 *       default "uniform") on a radix x radix mesh with DVS disabled,
 *       recording every injected packet.  The output format follows
 *       the file extension: ".dvst" = binary, anything else = CSV.
 *       Closed-loop workloads ("cmp") record correctly: the recorder
 *       is transparent to delivery notifications.
 *
 *   trace_tool convert in=FILE out=FILE [nodes=N]
 *       Re-encode a trace (extension selects each side's format).
 *       `nodes` stamps a node count into a binary output header so
 *       readers range-check ids (0 = unknown).
 *
 *   trace_tool inspect in=FILE
 *       Print header/summary info.  Binary traces are streamed, so
 *       inspection of arbitrarily long traces is O(1) in memory.
 *
 * User errors (bad spec, malformed trace, unwritable path) exit 1 with
 * a message on stderr.
 */

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>

#include "common/config.hpp"
#include "common/fatal.hpp"
#include "network/network.hpp"
#include "traffic/trace.hpp"
#include "workload/factory.hpp"
#include "workload/trace_binary.hpp"

using namespace dvsnet;

namespace
{

int
usage()
{
    std::fprintf(
        stderr,
        "usage: trace_tool record out=FILE [workload=SPEC] [radix=N]\n"
        "                  [torus=0|1] [cycles=N] [rate=R] [seed=S]\n"
        "       trace_tool convert in=FILE out=FILE [nodes=N]\n"
        "       trace_tool inspect in=FILE\n"
        "\n"
        "formats by extension: .dvst = binary, anything else = CSV\n"
        "registered workloads:\n");
    const auto &factory = workload::WorkloadFactory::instance();
    for (const auto &name : factory.names()) {
        std::fprintf(stderr, "  %-16s %s\n", name.c_str(),
                     factory.description(name).c_str());
    }
    return 1;
}

std::string
requireKey(const Config &config, const std::string &key,
           const char *command)
{
    const std::string value = config.getString(key, "");
    if (value.empty()) {
        throw ConfigError(detail::concat("trace_tool ", command,
                                         ": missing required ", key,
                                         "=FILE"));
    }
    return value;
}

void
saveTrace(const traffic::Trace &trace, const std::string &path,
          std::uint32_t numNodes)
{
    if (workload::isBinaryTracePath(path))
        workload::saveBinaryTrace(trace, path, numNodes);
    else
        trace.save(path);
}

int
record(const Config &config)
{
    const std::string out = requireKey(config, "out", "record");
    const std::string spec = config.getString("workload", "uniform");

    network::NetworkConfig cfg;
    cfg.radix = static_cast<std::int32_t>(config.getInt("radix", 8));
    cfg.torus = config.getBool("torus", false);
    cfg.policy = network::PolicyKind::None;

    const auto cycles =
        static_cast<Cycle>(config.getInt("cycles", 50000));
    network::Network net(cfg);
    workload::WorkloadContext context{
        net.topology(), config.getDouble("rate", 1.0),
        static_cast<std::uint64_t>(config.getInt("seed", 12345)),
        traffic::TwoLevelParams{}};
    const auto generator = workload::buildWorkload(spec, context);
    traffic::TraceRecorder recorder(*generator);
    net.attachTraffic(recorder);
    net.run(0, cycles);

    saveTrace(recorder.trace(), out,
              static_cast<std::uint32_t>(net.topology().numNodes()));
    std::printf("recorded %zu packets over %llu cycles of '%s' -> %s\n",
                recorder.trace().size(),
                static_cast<unsigned long long>(cycles), spec.c_str(),
                out.c_str());
    return 0;
}

int
convert(const Config &config)
{
    const std::string in = requireKey(config, "in", "convert");
    const std::string out = requireKey(config, "out", "convert");
    const auto nodes =
        static_cast<std::uint32_t>(config.getInt("nodes", 0));

    const traffic::Trace trace = workload::loadAnyTrace(in);
    saveTrace(trace, out, nodes);
    std::printf("converted %zu entries: %s -> %s\n", trace.size(),
                in.c_str(), out.c_str());
    return 0;
}

/** Shared summary accumulator for both formats. */
struct Summary
{
    std::uint64_t entries = 0;
    Tick first = 0;
    Tick last = 0;
    NodeId maxNode = -1;
    std::map<std::uint8_t, std::uint64_t> perClass;
    bool extended = false;

    void
    add(const traffic::TraceEntry &entry)
    {
        if (entries == 0)
            first = entry.when;
        last = entry.when;
        maxNode = std::max({maxNode, entry.src, entry.dst});
        ++perClass[entry.trafficClass];
        extended = extended || entry.sizeFlits != 0 ||
                   entry.trafficClass != 0;
        ++entries;
    }
};

int
inspect(const Config &config)
{
    const std::string in = requireKey(config, "in", "inspect");
    Summary summary;

    if (workload::isBinaryTracePath(in)) {
        std::ifstream file(in, std::ios::binary);
        if (!file)
            throw ConfigError("cannot open binary trace '" + in + "'");
        workload::BinaryTraceReader reader(file);
        std::printf("format:       binary (version %u)\n",
                    reader.header().version);
        std::printf("header nodes: %u%s\n", reader.header().numNodes,
                    reader.header().numNodes == 0 ? " (unknown)" : "");
        traffic::TraceEntry entry;
        while (reader.next(entry))
            summary.add(entry);
    } else {
        std::printf("format:       CSV\n");
        for (const auto &entry : traffic::Trace::load(in).entries())
            summary.add(entry);
    }

    std::printf("entries:      %llu\n",
                static_cast<unsigned long long>(summary.entries));
    if (summary.entries == 0)
        return 0;
    std::printf("max node id:  %d\n", summary.maxNode);
    std::printf("tick span:    %llu .. %llu (%.1f cycles)\n",
                static_cast<unsigned long long>(summary.first),
                static_cast<unsigned long long>(summary.last),
                static_cast<double>(summary.last - summary.first) /
                    static_cast<double>(kRouterClockPeriod));
    std::printf("extended:     %s\n",
                summary.extended ? "yes (per-packet size/class)"
                                 : "no (default size, class 0)");
    for (const auto &[cls, count] : summary.perClass) {
        std::printf("class %3u:    %llu packets\n", cls,
                    static_cast<unsigned long long>(count));
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string command = argv[1];
    try {
        // fromArgs skips its argv[0]; offset so it parses everything
        // after the subcommand token.
        const Config config = Config::fromArgs(argc - 1, argv + 1);
        if (command == "record")
            return record(config);
        if (command == "convert")
            return convert(config);
        if (command == "inspect")
            return inspect(config);
    } catch (const ConfigError &e) {
        std::fprintf(stderr, "trace_tool: %s\n", e.what());
        return 1;
    }
    std::fprintf(stderr, "trace_tool: unknown command '%s'\n",
                 command.c_str());
    return usage();
}
